// Package yannakakis implements the Yannakakis algorithm for acyclic
// queries and its distributed variants (slides 64–95):
//
//   - Serial — the classical O(IN + OUT) three-phase algorithm (upward
//     semijoins, downward semijoins, bottom-up joins) on one machine.
//   - GYM — distributed Yannakakis: every semijoin and join becomes a
//     hash-partitioned MPC round with load O((IN+OUT)/p). The vanilla
//     variant runs one semijoin per round (r = O(n), slides 80–89); the
//     optimized variant runs each tree level's semijoins in parallel
//     with an intersection round and finishes with a one-round
//     HyperCube join phase (r = O(d), slides 90–94).
//   - IterativeBinaryJoin — the "what most systems do" baseline
//     (slide 57): a left-deep chain of parallel hash joins, one round
//     per join, whose intermediate results can explode on the inputs of
//     slide 63.
//   - GHDRun — executes any query from a width-w, depth-d generalized
//     hypertree decomposition: all bags are materialized with HyperCube
//     grids in one round, and the acyclic bag tree is then processed
//     with GYM — realizing the r = O(d), L = O((IN^w + OUT)/p)
//     trade-off of slide 95.
package yannakakis

import (
	"fmt"

	"mpcquery/internal/hypercube"
	"mpcquery/internal/hypergraph"
	"mpcquery/internal/mpc"
	"mpcquery/internal/relation"
	"mpcquery/internal/trace"
)

// SerialStats reports the work done by a serial Yannakakis run.
type SerialStats struct {
	Semijoins       int
	Joins           int
	MaxIntermediate int // largest intermediate join result (≤ OUT when reduced)
}

// prepare renames each relation's attributes to the atom's variable
// names by position.
func prepare(q hypergraph.Query, rels map[string]*relation.Relation) map[string]*relation.Relation {
	out := make(map[string]*relation.Relation, len(q.Atoms))
	for _, a := range q.Atoms {
		r, ok := rels[a.Name]
		if !ok {
			panic(fmt.Sprintf("yannakakis: no relation for atom %s", a.Name))
		}
		if r.Arity() != len(a.Vars) {
			panic(fmt.Sprintf("yannakakis: relation %s arity %d, atom wants %d", a.Name, r.Arity(), len(a.Vars)))
		}
		renamed := relation.New(a.Name, a.Vars...)
		for i := 0; i < r.Len(); i++ {
			renamed.AppendRow(r.Row(i))
		}
		out[a.Name] = renamed
	}
	return out
}

// Serial runs the three-phase Yannakakis algorithm on a single machine.
// The query must be acyclic (pass its GYO join tree).
func Serial(jt *hypergraph.JoinTree, rels map[string]*relation.Relation) (*relation.Relation, *SerialStats) {
	q := jt.Query
	work := prepare(q, rels)
	st := &SerialStats{}
	cur := make([]*relation.Relation, len(q.Atoms))
	for i, a := range q.Atoms {
		cur[i] = work[a.Name]
	}
	// Upward: children reduce parents, deepest first.
	for _, i := range jt.PostOrder() {
		for _, ch := range jt.Children[i] {
			cur[i] = relation.Semijoin(q.Atoms[i].Name, cur[i], cur[ch])
			st.Semijoins++
		}
	}
	// Downward: parents reduce children, root first.
	for _, i := range jt.PreOrder() {
		for _, ch := range jt.Children[i] {
			cur[ch] = relation.Semijoin(q.Atoms[ch].Name, cur[ch], cur[i])
			st.Semijoins++
		}
	}
	// Join phase: bottom-up; after full reduction every intermediate has
	// at most OUT tuples.
	acc := make([]*relation.Relation, len(q.Atoms))
	for _, i := range jt.PostOrder() {
		acc[i] = cur[i]
		for _, ch := range jt.Children[i] {
			acc[i] = relation.HashJoin("T", acc[i], acc[ch])
			st.Joins++
			if acc[i].Len() > st.MaxIntermediate {
				st.MaxIntermediate = acc[i].Len()
			}
		}
	}
	out := acc[jt.Root].Project(q.Name, q.Vars()...)
	return out, st
}

// Result describes a distributed execution.
type Result struct {
	OutName string
	Rounds  int
	// MaxIntermediate is the largest total (cluster-wide) intermediate
	// relation produced by a join round — the quantity that explodes in
	// slide 63.
	MaxIntermediate int
}

// semijoinRound co-partitions target and reducer on their shared
// attributes and replaces target with target ⋉ reducer. The reducer
// only ships its key projection. One MPC round.
func semijoinRound(c *mpc.Cluster, roundName, target, reducer string, targetAttrs, reducerAttrs []string, seed uint64) {
	shared := sharedOf(targetAttrs, reducerAttrs)
	if len(shared) == 0 {
		panic(fmt.Sprintf("yannakakis: %s and %s share no attributes", target, reducer))
	}
	tmpT := roundName + ":t"
	tmpK := roundName + ":k"
	c.Round(roundName, func(srv *mpc.Server, out *mpc.Out) {
		if frag := srv.Rel(target); frag != nil {
			st := out.Open(tmpT, frag.Attrs()...)
			cols := colsOf(frag, shared)
			for i := 0; i < frag.Len(); i++ {
				row := frag.Row(i)
				st.SendRow(relation.Bucket(relation.HashRow(row, cols, seed), c.P()), row)
			}
		}
		if frag := srv.Rel(reducer); frag != nil {
			keys := frag.Project(tmpK, shared...)
			keys.Dedup()
			st := out.Open(tmpK, shared...)
			cols := colsOf(keys, shared)
			for i := 0; i < keys.Len(); i++ {
				row := keys.Row(i)
				st.SendRow(relation.Bucket(relation.HashRow(row, cols, seed), c.P()), row)
			}
		}
	})
	c.LocalStep(func(srv *mpc.Server) {
		tf := srv.RelOrEmpty(tmpT, targetAttrs...)
		kf := srv.RelOrEmpty(tmpK, shared...)
		srv.Put(relation.Semijoin(target, tf.Rename(target), kf.Rename("keys")))
		srv.Delete(tmpT)
		srv.Delete(tmpK)
	})
}

func sharedOf(a, b []string) []string {
	var out []string
	for _, x := range a {
		for _, y := range b {
			if x == y {
				out = append(out, x)
				break
			}
		}
	}
	return out
}

func colsOf(r *relation.Relation, attrs []string) []int {
	cols := make([]int, len(attrs))
	for i, a := range attrs {
		cols[i] = r.MustCol(a)
	}
	return cols
}

// joinRound co-partitions two distributed relations on their shared
// attributes and joins them locally into outRel. One MPC round. Returns
// the total output size.
func joinRound(c *mpc.Cluster, roundName, a, b, outRel string, aAttrs, bAttrs []string, seed uint64) int {
	shared := sharedOf(aAttrs, bAttrs)
	if len(shared) == 0 {
		panic(fmt.Sprintf("yannakakis: join round %s has no shared attributes", roundName))
	}
	tmpA, tmpB := roundName+":a", roundName+":b"
	c.Round(roundName, func(srv *mpc.Server, out *mpc.Out) {
		for _, spec := range []struct {
			rel, tmp string
		}{{a, tmpA}, {b, tmpB}} {
			frag := srv.Rel(spec.rel)
			if frag == nil {
				continue
			}
			st := out.Open(spec.tmp, frag.Attrs()...)
			cols := colsOf(frag, shared)
			for i := 0; i < frag.Len(); i++ {
				row := frag.Row(i)
				st.SendRow(relation.Bucket(relation.HashRow(row, cols, seed), c.P()), row)
			}
		}
	})
	c.LocalStep(func(srv *mpc.Server) {
		af := srv.RelOrEmpty(tmpA, aAttrs...)
		bf := srv.RelOrEmpty(tmpB, bAttrs...)
		srv.Put(relation.HashJoin(outRel, af.Rename("a"), bf.Rename("b")))
		srv.Delete(tmpA)
		srv.Delete(tmpB)
	})
	return c.TotalLen(outRel)
}

// GYM runs vanilla distributed Yannakakis (slides 78–89): one semijoin
// per round upward, one per round downward, then one pairwise join per
// round bottom-up. r = O(n) rounds, load O((IN+OUT)/p).
func GYM(c *mpc.Cluster, jt *hypergraph.JoinTree, rels map[string]*relation.Relation, outName string, seed uint64) *Result {
	q := jt.Query
	work := prepare(q, rels)
	for _, a := range q.Atoms {
		c.ScatterRoundRobin(work[a.Name])
	}
	trace.Annotatef(c, "yannakakis.GYM %s (%d atoms)", q.Name, len(q.Atoms))
	start := c.Metrics().Rounds()
	attrsOf := func(i int) []string { return q.Atoms[i].Vars }
	round := 0
	// Upward semijoins: children before parents.
	for _, i := range jt.PostOrder() {
		for _, ch := range jt.Children[i] {
			semijoinRound(c, fmt.Sprintf("gym:up%d", round), q.Atoms[i].Name, q.Atoms[ch].Name, attrsOf(i), attrsOf(ch), seed+uint64(round))
			round++
		}
	}
	// Downward semijoins: parents before children.
	for _, i := range jt.PreOrder() {
		for _, ch := range jt.Children[i] {
			semijoinRound(c, fmt.Sprintf("gym:down%d", round), q.Atoms[ch].Name, q.Atoms[i].Name, attrsOf(ch), attrsOf(i), seed+uint64(round))
			round++
		}
	}
	// Join phase: bottom-up pairwise joins.
	maxInter := 0
	accName := make([]string, len(q.Atoms))
	accAttrs := make([][]string, len(q.Atoms))
	for i, a := range q.Atoms {
		accName[i] = a.Name
		accAttrs[i] = a.Vars
	}
	for _, i := range jt.PostOrder() {
		for _, ch := range jt.Children[i] {
			outRel := fmt.Sprintf("%s:acc%d", outName, round)
			n := joinRound(c, fmt.Sprintf("gym:join%d", round), accName[i], accName[ch], outRel, accAttrs[i], accAttrs[ch], seed+uint64(round))
			if n > maxInter {
				maxInter = n
			}
			c.DeleteAll(accName[i])
			c.DeleteAll(accName[ch])
			accName[i] = outRel
			accAttrs[i] = unionAttrs(accAttrs[i], accAttrs[ch])
			round++
		}
	}
	finalize(c, q, accName[jt.Root], outName)
	return &Result{OutName: outName, Rounds: c.Metrics().Rounds() - start, MaxIntermediate: maxInter}
}

func unionAttrs(a, b []string) []string {
	out := append([]string(nil), a...)
	for _, x := range b {
		dup := false
		for _, y := range a {
			if x == y {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, x)
		}
	}
	return out
}

// finalize projects the accumulated relation to the query's variable
// order under outName on every server.
func finalize(c *mpc.Cluster, q hypergraph.Query, accRel, outName string) {
	vars := q.Vars()
	c.LocalStep(func(srv *mpc.Server) {
		frag := srv.Rel(accRel)
		if frag == nil {
			srv.Put(relation.New(outName, vars...))
			return
		}
		srv.Put(frag.Project(outName, vars...))
		srv.Delete(accRel)
	})
}

// GYMOptimized runs the depth-optimized GYM of slides 90–94: per level
// (deepest first) all parents are semijoined by all their children in
// one round — a parent with k children is shipped in k keyed copies —
// followed by one intersection round; the downward phase runs one round
// per level; the join phase is a single HyperCube round over the fully
// reduced relations. r = O(depth(jt)).
func GYMOptimized(c *mpc.Cluster, jt *hypergraph.JoinTree, rels map[string]*relation.Relation, outName string, seed uint64) *Result {
	q := jt.Query
	work := prepare(q, rels)
	for _, a := range q.Atoms {
		c.ScatterRoundRobin(work[a.Name])
	}
	trace.Annotatef(c, "yannakakis.GYMOptimized %s (depth %d)", q.Name, len(jt.Levels())-1)
	start := c.Metrics().Rounds()
	levels := jt.Levels()
	round := 0
	// Upward, deepest level first: semijoin all parents at level d by
	// their children (level d+1).
	for d := len(levels) - 2; d >= 0; d-- {
		var parents []int
		for _, i := range levels[d] {
			if len(jt.Children[i]) > 0 {
				parents = append(parents, i)
			}
		}
		if len(parents) == 0 {
			continue
		}
		parallelSemijoinRound(c, fmt.Sprintf("gymopt:up%d", round), q, jt, parents, seed+uint64(round))
		round += 2 // semijoin + intersect
	}
	// Downward, root level first: children semijoined by parents.
	for d := 0; d < len(levels)-1; d++ {
		var edges [][2]int // (child, parent)
		for _, i := range levels[d] {
			for _, ch := range jt.Children[i] {
				edges = append(edges, [2]int{ch, i})
			}
		}
		if len(edges) == 0 {
			continue
		}
		downwardRound(c, fmt.Sprintf("gymopt:down%d", round), q, edges, seed+uint64(round))
		round++
	}
	// Join phase: one HyperCube round over the reduced relations.
	reduced := map[string]*relation.Relation{}
	for _, a := range q.Atoms {
		reduced[a.Name] = c.Gather(a.Name)
		c.DeleteAll(a.Name)
	}
	if _, err := hypercube.Run(c, q, reduced, outName, seed+999, hypercube.LocalGeneric); err != nil {
		panic(fmt.Sprintf("yannakakis: join-phase HyperCube: %v", err))
	}
	return &Result{OutName: outName, Rounds: c.Metrics().Rounds() - start}
}

// parallelSemijoinRound semijoins every listed parent by all of its
// children in one round plus one intersection round. For a parent with
// children c1..ck, k keyed copies of the parent are co-partitioned with
// each child's key projection (round 1, slide 91); each copy is reduced
// locally, and the copies are then re-partitioned on the full parent
// tuple and intersected (round 2, slide 92).
func parallelSemijoinRound(c *mpc.Cluster, name string, q hypergraph.Query, jt *hypergraph.JoinTree, parents []int, seed uint64) {
	type edge struct {
		parent, child int
		shared        []string
	}
	var edges []edge
	for _, pIdx := range parents {
		for _, ch := range jt.Children[pIdx] {
			sh := sharedOf(q.Atoms[pIdx].Vars, q.Atoms[ch].Vars)
			if len(sh) == 0 {
				panic("yannakakis: parent and child share no attributes")
			}
			edges = append(edges, edge{parent: pIdx, child: ch, shared: sh})
		}
	}
	// Round 1: ship parent copies + child keys, one stream pair per edge.
	c.Round(name+":semi", func(srv *mpc.Server, out *mpc.Out) {
		for ei, e := range edges {
			pa := q.Atoms[e.parent]
			if frag := srv.Rel(pa.Name); frag != nil {
				st := out.Open(fmt.Sprintf("%s:p%d", name, ei), pa.Vars...)
				cols := colsOf(frag, e.shared)
				for i := 0; i < frag.Len(); i++ {
					row := frag.Row(i)
					st.SendRow(relation.Bucket(relation.HashRow(row, cols, seed+uint64(ei)), c.P()), row)
				}
			}
			ca := q.Atoms[e.child]
			if frag := srv.Rel(ca.Name); frag != nil {
				keys := frag.Project("k", e.shared...)
				keys.Dedup()
				st := out.Open(fmt.Sprintf("%s:k%d", name, ei), e.shared...)
				cols := colsOf(keys, e.shared)
				for i := 0; i < keys.Len(); i++ {
					row := keys.Row(i)
					st.SendRow(relation.Bucket(relation.HashRow(row, cols, seed+uint64(ei)), c.P()), row)
				}
			}
		}
	})
	c.LocalStep(func(srv *mpc.Server) {
		for ei, e := range edges {
			pa := q.Atoms[e.parent]
			pf := srv.RelOrEmpty(fmt.Sprintf("%s:p%d", name, ei), pa.Vars...)
			kf := srv.RelOrEmpty(fmt.Sprintf("%s:k%d", name, ei), e.shared...)
			srv.Put(relation.Semijoin(fmt.Sprintf("%s:r%d", name, ei), pf.Rename("p"), kf.Rename("k")))
			srv.Delete(fmt.Sprintf("%s:p%d", name, ei))
			srv.Delete(fmt.Sprintf("%s:k%d", name, ei))
		}
	})
	// Round 2: re-partition each reduced copy by the full parent tuple
	// and intersect the copies of each parent.
	c.Round(name+":intersect", func(srv *mpc.Server, out *mpc.Out) {
		for ei, e := range edges {
			pa := q.Atoms[e.parent]
			frag := srv.Rel(fmt.Sprintf("%s:r%d", name, ei))
			if frag == nil {
				continue
			}
			st := out.Open(fmt.Sprintf("%s:x%d", name, ei), pa.Vars...)
			allCols := colsOf(frag, pa.Vars)
			for i := 0; i < frag.Len(); i++ {
				row := frag.Row(i)
				st.SendRow(relation.Bucket(relation.HashRow(row, allCols, seed^0xabcd), c.P()), row)
			}
			srv.Delete(fmt.Sprintf("%s:r%d", name, ei))
		}
	})
	c.LocalStep(func(srv *mpc.Server) {
		for _, pIdx := range parents {
			pa := q.Atoms[pIdx]
			var copies []*relation.Relation
			for ei, e := range edges {
				if e.parent != pIdx {
					continue
				}
				cf := srv.RelOrEmpty(fmt.Sprintf("%s:x%d", name, ei), pa.Vars...)
				cf.Dedup()
				copies = append(copies, cf.Rename(fmt.Sprintf("c%d", ei)))
				srv.Delete(fmt.Sprintf("%s:x%d", name, ei))
			}
			srv.Put(relation.Intersect(pa.Name, copies...))
		}
	})
}

// downwardRound semijoins every (child, parent) edge in one round:
// children and the parents' key projections are co-partitioned per
// edge.
func downwardRound(c *mpc.Cluster, name string, q hypergraph.Query, edges [][2]int, seed uint64) {
	type espec struct {
		child, parent int
		shared        []string
	}
	var specs []espec
	for _, e := range edges {
		sh := sharedOf(q.Atoms[e[0]].Vars, q.Atoms[e[1]].Vars)
		specs = append(specs, espec{child: e[0], parent: e[1], shared: sh})
	}
	c.Round(name, func(srv *mpc.Server, out *mpc.Out) {
		for ei, e := range specs {
			ca := q.Atoms[e.child]
			if frag := srv.Rel(ca.Name); frag != nil {
				st := out.Open(fmt.Sprintf("%s:c%d", name, ei), ca.Vars...)
				cols := colsOf(frag, e.shared)
				for i := 0; i < frag.Len(); i++ {
					row := frag.Row(i)
					st.SendRow(relation.Bucket(relation.HashRow(row, cols, seed+uint64(ei)), c.P()), row)
				}
			}
			pa := q.Atoms[e.parent]
			if frag := srv.Rel(pa.Name); frag != nil {
				keys := frag.Project("k", e.shared...)
				keys.Dedup()
				st := out.Open(fmt.Sprintf("%s:k%d", name, ei), e.shared...)
				cols := colsOf(keys, e.shared)
				for i := 0; i < keys.Len(); i++ {
					row := keys.Row(i)
					st.SendRow(relation.Bucket(relation.HashRow(row, cols, seed+uint64(ei)), c.P()), row)
				}
			}
		}
	})
	c.LocalStep(func(srv *mpc.Server) {
		for ei, e := range specs {
			ca := q.Atoms[e.child]
			cf := srv.RelOrEmpty(fmt.Sprintf("%s:c%d", name, ei), ca.Vars...)
			kf := srv.RelOrEmpty(fmt.Sprintf("%s:k%d", name, ei), e.shared...)
			srv.Put(relation.Semijoin(ca.Name, cf.Rename("c"), kf.Rename("k")))
			srv.Delete(fmt.Sprintf("%s:c%d", name, ei))
			srv.Delete(fmt.Sprintf("%s:k%d", name, ei))
		}
	})
}

// IterativeBinaryJoin is the multi-round baseline (slide 57/63): join
// the relations left to right, one co-partitioned hash join per round.
// Consecutive relations must share at least one attribute. Returns the
// peak total intermediate size, the quantity that blows up on slide 63.
func IterativeBinaryJoin(c *mpc.Cluster, q hypergraph.Query, rels map[string]*relation.Relation, outName string, seed uint64) *Result {
	work := prepare(q, rels)
	for _, a := range q.Atoms {
		c.ScatterRoundRobin(work[a.Name])
	}
	trace.Annotatef(c, "yannakakis.IterativeBinaryJoin %s (%d atoms)", q.Name, len(q.Atoms))
	start := c.Metrics().Rounds()
	accRel := q.Atoms[0].Name
	accAttrs := q.Atoms[0].Vars
	maxInter := 0
	for i := 1; i < len(q.Atoms); i++ {
		next := q.Atoms[i]
		outRel := fmt.Sprintf("%s:acc%d", outName, i)
		n := joinRound(c, fmt.Sprintf("ibj:join%d", i), accRel, next.Name, outRel, accAttrs, next.Vars, seed+uint64(i))
		if n > maxInter {
			maxInter = n
		}
		c.DeleteAll(accRel)
		c.DeleteAll(next.Name)
		accRel = outRel
		accAttrs = unionAttrs(accAttrs, next.Vars)
	}
	finalize(c, q, accRel, outName)
	return &Result{OutName: outName, Rounds: c.Metrics().Rounds() - start, MaxIntermediate: maxInter}
}

// GHDRun executes a query via a width-w, depth-d GHD (slide 95):
// round 1 materializes every bag (joining its λ atoms on a HyperCube
// grid, all bags sharing the round); the acyclic bag tree is then
// processed by optimized GYM. r = O(d), L = O((IN^w + OUT)/p).
func GHDRun(c *mpc.Cluster, g *hypergraph.GHD, rels map[string]*relation.Relation, outName string, seed uint64) *Result {
	q := g.Query
	work := prepare(q, rels)
	start := c.Metrics().Rounds()

	// Build one HyperCube plan per bag over its λ atoms' sub-query.
	type bagPlan struct {
		sub  hypergraph.Query
		plan *hypercube.Plan
	}
	plans := make([]bagPlan, len(g.Bags))
	for bi, bag := range g.Bags {
		var atoms []hypergraph.Atom
		sizes := map[string]int64{}
		for _, ai := range bag.Atoms {
			a := q.Atoms[ai]
			atoms = append(atoms, a)
			n := int64(work[a.Name].Len())
			if n == 0 {
				n = 1
			}
			sizes[a.Name] = n
		}
		sub := hypergraph.Query{Name: fmt.Sprintf("bag%d", bi), Atoms: atoms}
		pl, err := hypercube.NewPlan(sub, sizes, c.P(), seed+uint64(bi))
		if err != nil {
			panic(fmt.Sprintf("yannakakis: bag plan: %v", err))
		}
		plans[bi] = bagPlan{sub: sub, plan: pl}
	}
	// Scatter each atom once per bag that uses it (under a bag-local
	// name, since different bags route the same atom differently).
	for bi, bp := range plans {
		for _, a := range bp.sub.Atoms {
			c.ScatterRoundRobin(work[a.Name].Rename(fmt.Sprintf("b%d:%s", bi, a.Name)))
		}
	}
	// One round: route all atoms of all bags.
	c.Round("ghd:bags", func(srv *mpc.Server, out *mpc.Out) {
		for bi, bp := range plans {
			for _, a := range bp.sub.Atoms {
				frag := srv.Rel(fmt.Sprintf("b%d:%s", bi, a.Name))
				if frag == nil {
					continue
				}
				st := out.Open(fmt.Sprintf("ghd:b%d:%s", bi, a.Name), a.Vars...)
				for i := 0; i < frag.Len(); i++ {
					row := frag.Row(i)
					bp.plan.RouteTuple(a, row, 0, func(server int) {
						st.SendRow(server, row)
					})
				}
			}
		}
	})
	// Local: join each bag's fragments, project to bag vars.
	bagVars := make([][]string, len(g.Bags))
	for bi, bag := range g.Bags {
		bagVars[bi] = bag.Vars
	}
	c.LocalStep(func(srv *mpc.Server) {
		for bi, bp := range plans {
			inputs := make([]*relation.Relation, len(bp.sub.Atoms))
			var allVars []string
			for i, a := range bp.sub.Atoms {
				inputs[i] = srv.RelOrEmpty(fmt.Sprintf("ghd:b%d:%s", bi, a.Name), a.Vars...)
				allVars = unionAttrs(allVars, a.Vars)
				srv.Delete(fmt.Sprintf("ghd:b%d:%s", bi, a.Name))
			}
			joined := relation.GenericJoin("j", allVars, inputs...)
			bagRel := joined.Project(fmt.Sprintf("bag%d", bi), bagVars[bi]...)
			bagRel.Dedup()
			srv.Put(bagRel)
		}
	})
	for bi, bp := range plans {
		for _, a := range bp.sub.Atoms {
			c.DeleteAll(fmt.Sprintf("b%d:%s", bi, a.Name))
		}
	}

	// The bag tree is an acyclic query over bag relations; run optimized
	// GYM on it.
	bagAtoms := make([]hypergraph.Atom, len(g.Bags))
	for bi := range g.Bags {
		bagAtoms[bi] = hypergraph.Atom{Name: fmt.Sprintf("bag%d", bi), Vars: bagVars[bi]}
	}
	bagQuery := hypergraph.Query{Name: outName + ":bagq", Atoms: bagAtoms}
	bagTree := &hypergraph.JoinTree{
		Query:    bagQuery,
		Parent:   append([]int(nil), g.Parent...),
		Children: g.Children,
		Root:     g.Root,
	}
	bagRels := map[string]*relation.Relation{}
	for bi := range g.Bags {
		bagRels[fmt.Sprintf("bag%d", bi)] = c.Gather(fmt.Sprintf("bag%d", bi))
		c.DeleteAll(fmt.Sprintf("bag%d", bi))
	}
	sub := GYMOptimized(c, bagTree, bagRels, outName+":bq", seed+101)
	// Project to the original query's variable order.
	finalize(c, q, sub.OutName, outName)
	return &Result{OutName: outName, Rounds: c.Metrics().Rounds() - start}
}
