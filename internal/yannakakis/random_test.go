package yannakakis

import (
	"testing"

	"mpcquery/internal/bigjoin"
	"mpcquery/internal/hypercube"
	"mpcquery/internal/hypergraph"
	"mpcquery/internal/mpc"
	"mpcquery/internal/relation"
	"mpcquery/internal/workload"
)

// TestRandomAcyclicCrossValidation generates random acyclic queries and
// random data, then cross-validates every applicable engine: serial
// Yannakakis, vanilla GYM, optimized GYM, one-round HyperCube, and
// BiGJoin must all produce the same result set.
func TestRandomAcyclicCrossValidation(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		q := hypergraph.RandomAcyclic(2+int(seed%4), 3, seed)
		ok, jt := hypergraph.IsAcyclic(q)
		if !ok {
			t.Fatalf("seed %d: RandomAcyclic produced a cyclic query %s", seed, q)
		}
		rels := map[string]*relation.Relation{}
		for i, a := range q.Atoms {
			rels[a.Name] = workload.Uniform(a.Name, a.Vars, 40, 12, seed*100+int64(i))
		}
		want := reference(q, rels)

		// Serial.
		serialOut, _ := Serial(jt, rels)
		serialOut.Dedup()
		if !serialOut.EqualAsSets(want) {
			t.Errorf("seed %d: serial differs (%d vs %d)", seed, serialOut.Len(), want.Len())
		}
		// Vanilla GYM.
		cv := mpc.NewCluster(4, 1)
		GYM(cv, jt, rels, "out", 42)
		gv := cv.Gather("out")
		gv.Dedup()
		if !gv.EqualAsSets(want) {
			t.Errorf("seed %d: GYM differs (%d vs %d)", seed, gv.Len(), want.Len())
		}
		// Optimized GYM.
		co := mpc.NewCluster(4, 1)
		GYMOptimized(co, jt, rels, "out", 42)
		gopt := co.Gather("out")
		gopt.Dedup()
		if !gopt.EqualAsSets(want) {
			t.Errorf("seed %d: GYMOptimized differs (%d vs %d)", seed, gopt.Len(), want.Len())
		}
		// HyperCube.
		ch := mpc.NewCluster(4, 1)
		if _, err := hypercube.Run(ch, q, rels, "out", 42, hypercube.LocalGeneric); err != nil {
			t.Fatalf("seed %d: hypercube: %v", seed, err)
		}
		gh := ch.Gather("out")
		gh.Dedup()
		if !gh.EqualAsSets(want) {
			t.Errorf("seed %d: HyperCube differs (%d vs %d)", seed, gh.Len(), want.Len())
		}
		// BiGJoin.
		pl, err := bigjoin.NewPlan(q, nil)
		if err != nil {
			t.Fatalf("seed %d: bigjoin plan: %v", seed, err)
		}
		cb := mpc.NewCluster(4, 1)
		bigjoin.Run(cb, pl, rels, "out", 42)
		gb := cb.Gather("out")
		gb.Dedup()
		if !gb.EqualAsSets(want.Project("w", pl.VarOrder...)) {
			t.Errorf("seed %d: BiGJoin differs (%d vs %d)", seed, gb.Len(), want.Len())
		}
	}
}

// TestRandomAcyclicGYMIntermediatesBounded: with full reduction, the
// join-phase intermediates stay within the final output size.
func TestRandomAcyclicGYMIntermediatesBounded(t *testing.T) {
	for seed := int64(20); seed < 28; seed++ {
		q := hypergraph.RandomAcyclic(4, 3, seed)
		_, jt := hypergraph.IsAcyclic(q)
		rels := map[string]*relation.Relation{}
		for i, a := range q.Atoms {
			rels[a.Name] = workload.Uniform(a.Name, a.Vars, 60, 15, seed*10+int64(i))
		}
		out, st := Serial(jt, rels)
		if out.Len() > 0 && st.MaxIntermediate > out.Len() {
			t.Errorf("seed %d: serial intermediate %d > OUT %d", seed, st.MaxIntermediate, out.Len())
		}
	}
}
