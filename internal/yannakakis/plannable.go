package yannakakis

import (
	"fmt"

	"mpcquery/internal/cost"
	"mpcquery/internal/hypergraph"
)

// joinTreeConnected reports whether every non-root node of the join
// tree shares at least one variable with its parent. GYO accepts
// Cartesian products as "acyclic", but the GYM semijoin passes and the
// level-wise joins of the optimized variant only move tuples along
// shared attributes, so a disconnected tree would silently compute the
// wrong (empty-key) result.
func joinTreeConnected(jt *hypergraph.JoinTree) bool {
	for i, p := range jt.Parent {
		if p < 0 {
			continue
		}
		shared := false
		for _, v := range jt.Query.Atoms[i].Vars {
			if jt.Query.Atoms[p].HasVar(v) {
				shared = true
				break
			}
		}
		if !shared {
			return false
		}
	}
	return true
}

func acyclicConnected(st *cost.QueryStats) (*hypergraph.JoinTree, error) {
	ok, jt := hypergraph.IsAcyclic(st.Query)
	if !ok {
		return nil, fmt.Errorf("query is cyclic (GYO reduction leaves a core)")
	}
	if !joinTreeConnected(jt) {
		return nil, fmt.Errorf("join tree is disconnected (Cartesian product between atoms)")
	}
	return jt, nil
}

// Plannables describes the multi-round acyclic-query algorithms to the
// query planner (internal/plan):
//
//   - gym: textbook GYM (slides 68-74) — semijoin sweep down, sweep
//     up, then join up the tree; 3(n−1) rounds, load (IN+OUT)/p.
//   - gym-opt: the log-depth variant (slide 75) — one shared semijoin
//     round per tree level and level-parallel joins, 3(d−1)+1 rounds
//     for tree depth d.
//   - binaryplan: the iterative left-deep hash-join baseline
//     (slides 57/63) — n−1 rounds, but the load carries whatever
//     intermediate the prefix joins produce, which is what the planner
//     charges it for.
func Plannables() []cost.Plannable {
	return []cost.Plannable{
		{
			Alg:        "gym",
			Doc:        "GYM: Yannakakis over the join tree, 3(n-1) rounds (slides 68-74)",
			Executable: true,
			Applies: func(st *cost.QueryStats) error {
				_, err := acyclicConnected(st)
				return err
			},
			Predict: func(st *cost.QueryStats) (cost.Estimate, error) {
				n := len(st.Query.Atoms)
				if n == 1 {
					return cost.Estimate{Detail: "single atom: output is the input, no communication"}, nil
				}
				// Semijoin passes ship only dangling-free projections
				// (≤ IN/p per round) and the n−1 join-up rounds spread the
				// output across themselves — each edge of the tree ships
				// its own slice of the final result, not all of it.
				p := float64(st.P)
				return cost.Estimate{
					L: (float64(st.IN) + st.OutEst/float64(n-1)) / p,
					R: 3 * (n - 1),
					C: float64(n-1)*float64(st.IN) + st.OutEst,
				}, nil
			},
		},
		{
			Alg:        "gym-opt",
			Doc:        "level-parallel GYM, 3(depth-1)+1 rounds (slide 75)",
			Executable: true,
			Applies: func(st *cost.QueryStats) error {
				_, err := acyclicConnected(st)
				return err
			},
			Predict: func(st *cost.QueryStats) (cost.Estimate, error) {
				jt, err := acyclicConnected(st)
				if err != nil {
					return cost.Estimate{}, err
				}
				d := len(jt.Levels())
				if d <= 1 {
					return cost.Estimate{Detail: "single atom: output is the input, no communication"}, nil
				}
				// Same spreading as gym, but the level-parallel join rounds
				// are fewer (d−1), so each carries a larger output slice.
				p := float64(st.P)
				return cost.Estimate{
					L:      (float64(st.IN) + st.OutEst/float64(d-1)) / p,
					R:      3*(d-1) + 1,
					C:      float64(d-1)*float64(st.IN) + st.OutEst,
					Detail: fmt.Sprintf("tree depth %d", d),
				}, nil
			},
		},
		{
			Alg:        "binaryplan",
			Doc:        "iterative left-deep binary hash joins, n-1 rounds (slides 57/63)",
			Executable: true,
			Applies: func(st *cost.QueryStats) error {
				if len(st.Query.Atoms) < 2 {
					return fmt.Errorf("needs at least two atoms")
				}
				// Each join must share a variable with the prefix joined
				// so far, or the hash co-partitioning has no key.
				bound := map[string]bool{}
				for _, v := range st.Query.Atoms[0].Vars {
					bound[v] = true
				}
				for _, a := range st.Query.Atoms[1:] {
					shared := false
					for _, v := range a.Vars {
						if bound[v] {
							shared = true
						}
					}
					if !shared {
						return fmt.Errorf("atom %s shares no variable with the prefix (Cartesian round)", a.Name)
					}
					for _, v := range a.Vars {
						bound[v] = true
					}
				}
				return nil
			},
			Predict: func(st *cost.QueryStats) (cost.Estimate, error) {
				// Charge the largest estimated intermediate that actually
				// travels: prefix i (the heavy-aware chain estimate of the
				// first i atoms) is reshuffled for the join with atom i+1.
				// The final result stays distributed, so it is never
				// shipped.
				p := float64(st.P)
				n := len(st.Query.Atoms)
				names := make([]string, n)
				for i, a := range st.Query.Atoms {
					names[i] = a.Name
				}
				prefix := cost.ChainSizes(st, names)
				maxInter := 0.0
				sumInter := 0.0
				for _, b := range prefix[1 : n-1] {
					if b > maxInter {
						maxInter = b
					}
					sumInter += b
				}
				return cost.Estimate{
					L:      (float64(st.IN) + maxInter) / p,
					R:      n - 1,
					C:      float64(st.IN) + sumInter,
					Detail: fmt.Sprintf("max shipped intermediate ≈ %.4g", maxInter),
				}, nil
			},
		},
	}
}
