package yannakakis

import (
	"testing"

	"mpcquery/internal/hypergraph"
	"mpcquery/internal/mpc"
	"mpcquery/internal/relation"
	"mpcquery/internal/workload"
)

// reference evaluates the query locally with the generic join.
func reference(q hypergraph.Query, rels map[string]*relation.Relation) *relation.Relation {
	inputs := make([]*relation.Relation, len(q.Atoms))
	for i, a := range q.Atoms {
		r := rels[a.Name]
		renamed := relation.New(a.Name, a.Vars...)
		for j := 0; j < r.Len(); j++ {
			renamed.AppendRow(r.Row(j))
		}
		inputs[i] = renamed
	}
	out := relation.GenericJoin("want", q.Vars(), inputs...)
	out.Dedup()
	return out
}

func joinTreeOf(t *testing.T, q hypergraph.Query) *hypergraph.JoinTree {
	t.Helper()
	ok, jt := hypergraph.IsAcyclic(q)
	if !ok {
		t.Fatalf("%s should be acyclic", q.Name)
	}
	return jt
}

func TestSerialSlideTree(t *testing.T) {
	q := hypergraph.SlideTree()
	rels := workload.SlideTreeInput(60, 5)
	out, st := Serial(joinTreeOf(t, q), rels)
	want := reference(q, rels)
	outD := out.Clone()
	outD.Dedup()
	if !outD.EqualAsSets(want) {
		t.Fatalf("serial Yannakakis wrong: got %d, want %d", outD.Len(), want.Len())
	}
	// O(n) semijoins: 2 per edge = 8 for 5 atoms.
	if st.Semijoins != 8 {
		t.Fatalf("semijoins = %d, want 8", st.Semijoins)
	}
	if st.Joins != 4 {
		t.Fatalf("joins = %d, want 4", st.Joins)
	}
}

// TestSerialIntermediatesBoundedByOutput is the heart of the Yannakakis
// guarantee (slide 77): after full reduction every intermediate join has
// at most OUT tuples.
func TestSerialIntermediatesBoundedByOutput(t *testing.T) {
	q := hypergraph.SlideTree()
	for seed := int64(0); seed < 5; seed++ {
		rels := workload.SlideTreeInput(80, seed)
		out, st := Serial(joinTreeOf(t, q), rels)
		if st.MaxIntermediate > out.Len() && st.MaxIntermediate > 0 && out.Len() > 0 {
			t.Fatalf("seed %d: intermediate %d > OUT %d", seed, st.MaxIntermediate, out.Len())
		}
	}
}

func TestSerialPathAndStar(t *testing.T) {
	for _, q := range []hypergraph.Query{hypergraph.Path(5), hypergraph.Star(4), hypergraph.RST()} {
		rels := map[string]*relation.Relation{}
		switch q.Name {
		case "rst":
			rels["R"] = workload.Uniform("R", []string{"x"}, 40, 30, 1)
			rels["S"] = workload.Uniform("S", []string{"x", "y"}, 60, 30, 2)
			rels["T"] = workload.Uniform("T", []string{"y"}, 40, 30, 3)
		default:
			for i, a := range q.Atoms {
				rels[a.Name] = workload.Uniform(a.Name, a.Vars, 50, 25, int64(i+1))
			}
		}
		out, _ := Serial(joinTreeOf(t, q), rels)
		out.Dedup()
		want := reference(q, rels)
		if !out.EqualAsSets(want) {
			t.Errorf("%s: serial result differs (got %d want %d)", q.Name, out.Len(), want.Len())
		}
	}
}

func TestGYMCorrect(t *testing.T) {
	q := hypergraph.SlideTree()
	rels := workload.SlideTreeInput(60, 7)
	want := reference(q, rels)
	c := mpc.NewCluster(8, 1)
	res := GYM(c, joinTreeOf(t, q), rels, "out", 42)
	got := c.Gather("out")
	got.Dedup()
	if !got.EqualAsSets(want) {
		t.Fatalf("GYM wrong: got %d, want %d", got.Len(), want.Len())
	}
	// Vanilla rounds: one per semijoin (8) + one per join (4) = 12.
	if res.Rounds != 12 {
		t.Fatalf("vanilla GYM rounds = %d, want 12", res.Rounds)
	}
}

func TestGYMOptimizedCorrectAndFewerRounds(t *testing.T) {
	q := hypergraph.SlideTree()
	rels := workload.SlideTreeInput(60, 9)
	want := reference(q, rels)

	cv := mpc.NewCluster(8, 1)
	rv := GYM(cv, joinTreeOf(t, q), rels, "out", 42)

	co := mpc.NewCluster(8, 1)
	ro := GYMOptimized(co, joinTreeOf(t, q), rels, "out", 42)

	got := co.Gather("out")
	got.Dedup()
	if !got.EqualAsSets(want) {
		t.Fatalf("optimized GYM wrong: got %d, want %d", got.Len(), want.Len())
	}
	if ro.Rounds >= rv.Rounds {
		t.Fatalf("optimized rounds %d should beat vanilla %d", ro.Rounds, rv.Rounds)
	}
}

// Slide 80 vs slide 94: on the star-4 query vanilla GYM takes 9 rounds
// (3 up + 3 down + 3 join) and optimized takes 4 (semijoin, intersect,
// down, join).
func TestGYMStarRoundCounts(t *testing.T) {
	q := hypergraph.Star(4)
	rels := map[string]*relation.Relation{}
	for i, a := range q.Atoms {
		rels[a.Name] = workload.Uniform(a.Name, a.Vars, 60, 20, int64(i+1))
	}
	want := reference(q, rels)

	cv := mpc.NewCluster(8, 1)
	rv := GYM(cv, joinTreeOf(t, q), rels, "out", 42)
	gv := cv.Gather("out")
	gv.Dedup()
	if !gv.EqualAsSets(want) {
		t.Fatal("vanilla GYM wrong on star")
	}
	if rv.Rounds != 9 {
		t.Fatalf("vanilla star-4 rounds = %d, slide says 9", rv.Rounds)
	}

	co := mpc.NewCluster(8, 1)
	ro := GYMOptimized(co, joinTreeOf(t, q), rels, "out", 42)
	g := co.Gather("out")
	g.Dedup()
	if !g.EqualAsSets(want) {
		t.Fatal("optimized GYM wrong on star")
	}
	if ro.Rounds != 4 {
		t.Fatalf("optimized star-4 rounds = %d, slide says 4", ro.Rounds)
	}
}

func TestIterativeBinaryJoinCorrect(t *testing.T) {
	q := hypergraph.Path(4)
	rels := map[string]*relation.Relation{}
	for _, r := range workload.PathInput(4, 50) {
		rels[r.Name()] = r
	}
	c := mpc.NewCluster(8, 1)
	res := IterativeBinaryJoin(c, q, rels, "out", 42)
	got := c.Gather("out")
	if got.Len() != 50 {
		t.Fatalf("path-4 matching join = %d, want 50", got.Len())
	}
	if res.Rounds != 3 {
		t.Fatalf("rounds = %d, want n-1 = 3", res.Rounds)
	}
	// Matching inputs: intermediates never grow (slide 57).
	if res.MaxIntermediate > 50 {
		t.Fatalf("matching data intermediates grew: %d", res.MaxIntermediate)
	}
}

// TestIterativeBinaryJoinBlowup reproduces slide 63: with multiplicity-d
// inputs the intermediate T1 = R1 ⋈ R2 has d² tuples per chain — far
// larger than IN or OUT would suggest per step.
func TestIterativeBinaryJoinBlowup(t *testing.T) {
	q := hypergraph.Path(3)
	const d = 12
	// Each Ri: keys 0..4 × multiplicity d on both sides of the chain.
	mk := func(name, a1, a2 string) *relation.Relation {
		r := relation.New(name, a1, a2)
		for k := relation.Value(0); k < 5; k++ {
			for i := relation.Value(0); i < d; i++ {
				r.Append(k*100+i, k)
				_ = i
			}
		}
		return r
	}
	// Build R1(A0,A1), R2(A1,A2), R3(A2,A3) so that A1 and A2 have
	// degree d on both sides.
	r1 := relation.New("R1", "A0", "A1")
	r2 := relation.New("R2", "A1", "A2")
	r3 := relation.New("R3", "A2", "A3")
	for k := relation.Value(0); k < 5; k++ {
		for i := relation.Value(0); i < d; i++ {
			r1.Append(k*1000+i, k)
			r2.Append(k, k)
			r3.Append(k, k*1000+i)
		}
	}
	_ = mk
	rels := map[string]*relation.Relation{"R1": r1, "R2": r2, "R3": r3}
	c := mpc.NewCluster(8, 1)
	res := IterativeBinaryJoin(c, q, rels, "out", 42)
	in := r1.Len() + r2.Len() + r3.Len()
	if res.MaxIntermediate <= in {
		t.Fatalf("expected intermediate blowup: max %d ≤ IN %d", res.MaxIntermediate, in)
	}
	want := reference(q, rels)
	got := c.Gather("out")
	got.Dedup()
	if !got.EqualAsSets(want) {
		t.Fatal("blowup case still must be correct")
	}
}

func TestGHDRunPathDecompositions(t *testing.T) {
	const n = 4
	q := hypergraph.Path(n)
	rels := map[string]*relation.Relation{}
	for i, a := range q.Atoms {
		rels[a.Name] = workload.Uniform(a.Name, a.Vars, 30, 10, int64(i+1))
	}
	want := reference(q, rels)
	for name, g := range map[string]*hypergraph.GHD{
		"chain":    hypergraph.PathChainGHD(n),
		"flat":     hypergraph.PathFlatGHD(n),
		"balanced": hypergraph.PathBalancedGHD(n),
	} {
		c := mpc.NewCluster(8, 1)
		GHDRun(c, g, rels, "out", 42)
		got := c.Gather("out")
		got.Dedup()
		if !got.EqualAsSets(want) {
			t.Errorf("%s GHD run wrong: got %d, want %d", name, got.Len(), want.Len())
		}
	}
}

func TestGHDRoundsScaleWithDepth(t *testing.T) {
	const n = 8
	q := hypergraph.Path(n)
	rels := map[string]*relation.Relation{}
	for _, r := range workload.PathInput(n, 20) {
		rels[r.Name()] = r
	}
	_ = q
	runRounds := func(g *hypergraph.GHD) int {
		c := mpc.NewCluster(8, 1)
		res := GHDRun(c, g, rels, "out", 42)
		return res.Rounds
	}
	chain := runRounds(hypergraph.PathChainGHD(n))
	flat := runRounds(hypergraph.PathFlatGHD(n))
	if flat >= chain {
		t.Fatalf("flat GHD rounds %d should beat chain GHD rounds %d", flat, chain)
	}
}

func TestSemijoinRoundReduces(t *testing.T) {
	// Direct unit test of the distributed semijoin primitive.
	c := mpc.NewCluster(4, 1)
	target := relation.FromRows("T", []string{"x", "y"}, [][]relation.Value{
		{1, 10}, {2, 20}, {3, 30},
	})
	reducer := relation.FromRows("Rd", []string{"y", "z"}, [][]relation.Value{
		{10, 0}, {30, 0},
	})
	c.ScatterRoundRobin(target)
	c.ScatterRoundRobin(reducer)
	semijoinRound(c, "semi", "T", "Rd", []string{"x", "y"}, []string{"y", "z"}, 7)
	got := c.Gather("T")
	if got.Len() != 2 {
		t.Fatalf("semijoin kept %d, want 2", got.Len())
	}
}

func TestJoinRoundSharedValidation(t *testing.T) {
	c := mpc.NewCluster(2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic: no shared attrs")
		}
	}()
	joinRound(c, "j", "A", "B", "out", []string{"x"}, []string{"y"}, 1)
}
