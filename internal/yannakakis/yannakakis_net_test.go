package yannakakis

import (
	"testing"

	"mpcquery/internal/hypergraph"
	"mpcquery/internal/mpc"
	"mpcquery/internal/relation"
	"mpcquery/internal/testkit"
)

// Cross-backend differential tests: the semijoin-program rounds of
// distributed Yannakakis (many small keyed streams, arity mixes, empty
// fragments) must be indistinguishable between the in-process engine
// and the TCP transport.

func TestGYMBackendDiff(t *testing.T) {
	cfg := testkit.Config{Gen: diffGen()}
	for _, q := range []hypergraph.Query{hypergraph.Path(3), hypergraph.SlideTree()} {
		testkit.RunBackendDiff(t, q, cfg,
			func(c *mpc.Cluster, q hypergraph.Query, rels map[string]*relation.Relation, outName string, seed uint64) error {
				GYM(c, treeOf(q), rels, outName, seed)
				return nil
			})
	}
}

func TestGYMOptimizedBackendDiff(t *testing.T) {
	testkit.RunBackendDiff(t, hypergraph.SlideTree(), testkit.Config{Gen: diffGen()},
		func(c *mpc.Cluster, q hypergraph.Query, rels map[string]*relation.Relation, outName string, seed uint64) error {
			GYMOptimized(c, treeOf(q), rels, outName, seed)
			return nil
		})
}
