package yannakakis_test

import (
	"fmt"

	"mpcquery/internal/hypergraph"
	"mpcquery/internal/mpc"
	"mpcquery/internal/relation"
	"mpcquery/internal/yannakakis"
)

// ExampleGYMOptimized runs distributed Yannakakis on the star query of
// slides 80–94 and shows the optimized 4-round schedule (vs vanilla's
// 9).
func ExampleGYMOptimized() {
	q := hypergraph.Star(4)
	rels := map[string]*relation.Relation{}
	for i, a := range q.Atoms {
		r := relation.New(a.Name, a.Vars...)
		for j := 0; j < 30; j++ {
			r.Append(relation.Value(j%5), relation.Value(j+i*100))
		}
		rels[a.Name] = r
	}
	_, jt := hypergraph.IsAcyclic(q)
	c := mpc.NewCluster(8, 1)
	res := yannakakis.GYMOptimized(c, jt, rels, "out", 42)
	fmt.Println("rounds:", res.Rounds)
	// Output:
	// rounds: 4
}

// ExampleSerial shows the classical O(IN+OUT) guarantee: after the two
// semijoin passes, no join intermediate exceeds the output size.
func ExampleSerial() {
	q := hypergraph.Path(3)
	rels := map[string]*relation.Relation{
		"R1": relation.FromRows("R1", []string{"A0", "A1"}, [][]relation.Value{{1, 2}, {9, 8}}),
		"R2": relation.FromRows("R2", []string{"A1", "A2"}, [][]relation.Value{{2, 3}, {7, 7}}),
		"R3": relation.FromRows("R3", []string{"A2", "A3"}, [][]relation.Value{{3, 4}}),
	}
	_, jt := hypergraph.IsAcyclic(q)
	out, stats := yannakakis.Serial(jt, rels)
	fmt.Println("output:", out.Len())
	fmt.Println("max intermediate:", stats.MaxIntermediate)
	fmt.Println("semijoins:", stats.Semijoins)
	// Output:
	// output: 1
	// max intermediate: 1
	// semijoins: 4
}
