package yannakakis

import (
	"testing"

	"mpcquery/internal/hypergraph"
	"mpcquery/internal/mpc"
	"mpcquery/internal/relation"
	"mpcquery/internal/testkit"
)

// Chaos-differential tests: the distributed Yannakakis variants under
// seeded fault schedules. Semijoin passes are stateful across many
// rounds — a crash that silently lost a reducer fragment would
// propagate dangling tuples into every later round — so these are the
// algorithms where "recovers bit-for-bit or fails loudly" matters most.

func chaosCfg() testkit.Config {
	cfg := testkit.Config{}
	cfg.Gen = diffGen()
	return cfg
}

func TestGYMChaosDiff(t *testing.T) {
	testkit.RunChaosDiff(t, hypergraph.Path(3), chaosCfg(),
		func(c *mpc.Cluster, q hypergraph.Query, rels map[string]*relation.Relation, outName string, seed uint64) error {
			GYM(c, treeOf(q), rels, outName, seed)
			return nil
		})
}

func TestGYMOptimizedChaosDiff(t *testing.T) {
	testkit.RunChaosDiff(t, hypergraph.SlideTree(), chaosCfg(),
		func(c *mpc.Cluster, q hypergraph.Query, rels map[string]*relation.Relation, outName string, seed uint64) error {
			GYMOptimized(c, treeOf(q), rels, outName, seed)
			return nil
		})
}

func TestIterativeBinaryJoinChaosDiff(t *testing.T) {
	testkit.RunChaosDiff(t, hypergraph.Star(4), chaosCfg(),
		func(c *mpc.Cluster, q hypergraph.Query, rels map[string]*relation.Relation, outName string, seed uint64) error {
			IterativeBinaryJoin(c, q, rels, outName, seed)
			return nil
		})
}
