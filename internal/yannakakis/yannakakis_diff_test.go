package yannakakis

import (
	"testing"

	"mpcquery/internal/hypergraph"
	"mpcquery/internal/mpc"
	"mpcquery/internal/relation"
	"mpcquery/internal/testkit"
)

// Differential tests: the distributed Yannakakis variants vs the
// sequential oracle on acyclic queries, with exact round counts derived
// from the join-tree structure.

// diffQueries are the acyclic shapes swept by every variant here.
func diffQueries() []hypergraph.Query {
	return []hypergraph.Query{
		hypergraph.Path(3),
		hypergraph.Star(4),
		hypergraph.SlideTree(),
	}
}

// diffGen keeps the heavy-hitter instances tractable: the star's center
// variable is the skewed attribute of all four atoms, so output size
// grows as (heavy degree)^4 — 40 tuples (heavy degree 12) keeps that
// near 2·10^4 instead of 10^6.
func diffGen() testkit.GenConfig {
	return testkit.GenConfig{Tuples: 40}
}

func treeOf(q hypergraph.Query) *hypergraph.JoinTree {
	ok, jt := hypergraph.IsAcyclic(q)
	if !ok {
		panic("yannakakis diff test: query not acyclic: " + q.Name)
	}
	return jt
}

// TestGYMDiff: vanilla distributed Yannakakis. One semijoin round per
// tree edge upward, one per edge downward, one join round per edge
// bottom-up: r = 3(n−1) exactly for an n-atom tree.
func TestGYMDiff(t *testing.T) {
	cfg := testkit.DefaultConfig()
	cfg.Gen = diffGen()
	cfg.Rounds = func(q hypergraph.Query, p int) int { return 3 * (len(q.Atoms) - 1) }
	for _, q := range diffQueries() {
		testkit.RunDiff(t, q, cfg,
			func(c *mpc.Cluster, q hypergraph.Query, rels map[string]*relation.Relation, outName string, seed uint64) error {
				GYM(c, treeOf(q), rels, outName, seed)
				return nil
			})
	}
}

// TestGYMOptimizedDiff: the depth-optimized variant. Every non-leaf
// level contributes two upward rounds (keyed semijoin + intersect) and
// one downward round, and the join phase is a single HyperCube round:
// r = 3·(depth−1) + 1 where depth = number of tree levels.
func TestGYMOptimizedDiff(t *testing.T) {
	cfg := testkit.DefaultConfig()
	cfg.Gen = diffGen()
	cfg.Rounds = func(q hypergraph.Query, p int) int {
		return 3*(len(treeOf(q).Levels())-1) + 1
	}
	for _, q := range diffQueries() {
		testkit.RunDiff(t, q, cfg,
			func(c *mpc.Cluster, q hypergraph.Query, rels map[string]*relation.Relation, outName string, seed uint64) error {
				GYMOptimized(c, treeOf(q), rels, outName, seed)
				return nil
			})
	}
}

// TestIterativeBinaryJoinDiff: the ablation baseline joining atoms one
// at a time — n−1 join rounds, no semijoin reduction.
func TestIterativeBinaryJoinDiff(t *testing.T) {
	cfg := testkit.DefaultConfig()
	cfg.Gen = diffGen()
	cfg.Rounds = func(q hypergraph.Query, p int) int { return len(q.Atoms) - 1 }
	for _, q := range diffQueries() {
		testkit.RunDiff(t, q, cfg,
			func(c *mpc.Cluster, q hypergraph.Query, rels map[string]*relation.Relation, outName string, seed uint64) error {
				IterativeBinaryJoin(c, q, rels, outName, seed)
				return nil
			})
	}
}

// TestSerialVsOracle cross-checks the sequential Yannakakis evaluator
// (the package's own reference path) against the testkit oracle, which
// shares no join code with it.
func TestSerialVsOracle(t *testing.T) {
	for _, q := range diffQueries() {
		for _, skew := range testkit.AllSkews {
			for _, seed := range []int64{1, 2, 3, 4, 5} {
				rels := testkit.GenInstance(q, skew, diffGen(), seed)
				got, _ := Serial(treeOf(q), rels)
				got = got.Project("out", q.Vars()...)
				got.Dedup()
				want := testkit.OracleJoin(q, rels)
				if !testkit.BagEqual(got, want) {
					t.Fatalf("%s/%s/seed%d: %s", q.Name, skew, seed, testkit.DiffSample(got, want))
				}
			}
		}
	}
}
