package service

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"mpcquery/internal/core"
	"mpcquery/internal/query"
	"mpcquery/internal/relation"
	"mpcquery/internal/trace"
)

// Config tunes one Service instance. Zero values fall back to the
// documented defaults.
type Config struct {
	// P is the simulated cluster size every query runs on (default 8).
	P int
	// Seed drives hashing and placement; equal seeds give bit-identical
	// executions (default 1).
	Seed int64
	// MaxInflight bounds concurrently executing queries (default 4).
	MaxInflight int
	// MaxQueue bounds queries waiting for a slot; beyond it requests
	// are shed immediately (default 16).
	MaxQueue int
	// QueueTimeout is how long a queued query waits for a slot before
	// being shed (default 100ms).
	QueueTimeout time.Duration
	// QuotaRate is each tenant's sustained queries/second; 0 disables
	// quotas.
	QuotaRate float64
	// QuotaBurst is each tenant's bucket capacity (default max(QuotaRate, 1)).
	QuotaBurst float64
	// PlanCacheSize is the LRU capacity of the plan cache (default 128).
	PlanCacheSize int
	// MaxResultRows caps the rows embedded in a response; the full count
	// is always reported (default 100).
	MaxResultRows int
	// Adaptive routes HyperCube executions through the skew-reactive
	// driver: a metered probe round switches the run to SkewHC when the
	// uniform plan's skew prediction turns out wrong mid-query.
	Adaptive bool
	// Capacities declares a heterogeneous per-server capacity profile
	// (len must equal P, entries > 0); HyperCube executions then use
	// capacity-proportional cell ownership. Nil means uniform.
	Capacities []float64
	// Clock overrides the quota clock (tests only; default time.Now).
	Clock func() time.Time
}

func (c Config) withDefaults() Config {
	if c.P == 0 {
		c.P = 8
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MaxInflight == 0 {
		c.MaxInflight = 4
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 16
	}
	if c.QueueTimeout == 0 {
		c.QueueTimeout = 100 * time.Millisecond
	}
	if c.QuotaBurst == 0 {
		c.QuotaBurst = c.QuotaRate
		if c.QuotaBurst < 1 {
			c.QuotaBurst = 1
		}
	}
	if c.PlanCacheSize == 0 {
		c.PlanCacheSize = 128
	}
	if c.MaxResultRows == 0 {
		c.MaxResultRows = 100
	}
	return c
}

// Service is a multi-tenant query service: it owns a registered data
// set, compiles Datalog text through the internal/query frontend, and
// executes on a core engine behind admission control, per-tenant
// quotas, and a plan cache.
type Service struct {
	cfg    Config
	engine *core.Engine
	admit  *admission
	quota  *quotas
	cache  *planCache

	mu       sync.RWMutex
	rels     map[string]*relation.Relation
	versions map[string]uint64

	statsMu sync.Mutex
	queries uint64
	failed  uint64
}

// New builds a Service from cfg (zero fields take defaults).
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	engine := core.NewEngine(cfg.P, cfg.Seed)
	engine.Adaptive = cfg.Adaptive
	engine.Capacities = cfg.Capacities
	s := &Service{
		cfg:      cfg,
		engine:   engine,
		admit:    newAdmission(cfg.MaxInflight, cfg.MaxQueue, cfg.QueueTimeout),
		cache:    newPlanCache(cfg.PlanCacheSize),
		rels:     map[string]*relation.Relation{},
		versions: map[string]uint64{},
	}
	if cfg.QuotaRate > 0 {
		s.quota = newQuotas(cfg.QuotaRate, cfg.QuotaBurst, cfg.Clock)
	}
	return s
}

// Register installs (or replaces) a relation under its own name, bumps
// its version, and invalidates every cached plan that depended on it.
func (s *Service) Register(rel *relation.Relation) {
	s.mu.Lock()
	s.rels[rel.Name()] = rel
	s.versions[rel.Name()]++
	s.mu.Unlock()
	s.cache.invalidate(rel.Name())
}

// Relations lists the registered relation names, sorted.
func (s *Service) Relations() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.rels))
	for n := range s.rels {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Request is one query submission.
type Request struct {
	// Tenant identifies the quota bucket; empty means the anonymous
	// tenant.
	Tenant string `json:"tenant"`
	// Query is the Datalog program text.
	Query string `json:"query"`
	// Trace, when true, attaches a recorder and returns the per-round
	// event stream as JSONL.
	Trace bool `json:"trace"`
}

// Cost is the metered MPC cost of one execution.
type Cost struct {
	MaxLoad   int64 `json:"l"`
	Rounds    int   `json:"r"`
	TotalComm int64 `json:"c"`
}

// Response is the outcome of one admitted, executed query.
type Response struct {
	Kind      string             `json:"kind"`
	Algorithm string             `json:"algorithm"`
	Reason    string             `json:"reason,omitempty"`
	Columns   []string           `json:"columns"`
	Rows      int                `json:"rows"`
	Output    [][]relation.Value `json:"output"`
	Truncated bool               `json:"truncated,omitempty"`
	Cost      Cost               `json:"cost"`
	// Iterations is the semi-naive iteration count (recursive only).
	Iterations int `json:"iterations,omitempty"`
	// CacheHit reports whether the plan came from the plan cache.
	CacheHit bool `json:"plan_cache_hit"`
	// Trace is the JSONL event stream when requested.
	Trace string `json:"trace,omitempty"`
}

// Do runs one query end to end: quota, admission, parse, compile
// against the current catalog, plan (through the cache), execute.
// Error types classify the failure: *query.Error (bad request),
// *QuotaError (over quota), ErrOverloaded (shed); anything else is an
// execution failure.
func (s *Service) Do(req Request) (*Response, error) {
	resp, err := s.do(req)
	s.statsMu.Lock()
	s.queries++
	if err != nil {
		s.failed++
	}
	s.statsMu.Unlock()
	return resp, err
}

func (s *Service) do(req Request) (*Response, error) {
	if err := s.quota.allow(req.Tenant); err != nil {
		return nil, err
	}
	if err := s.admit.acquire(); err != nil {
		return nil, err
	}
	defer s.admit.release()

	prog, err := query.Parse(req.Query)
	if err != nil {
		return nil, err
	}
	rels, cat, versions := s.snapshot()
	c, err := query.Compile(prog, cat)
	if err != nil {
		return nil, err
	}

	e := *s.engine
	var rec *trace.Recorder
	if req.Trace {
		rec = trace.NewRecorder()
		e.Trace = rec
	}

	alg := core.AlgAuto
	var cached *planEntry
	cacheable := c.Kind != query.KindRecursive
	var key string
	if cacheable {
		key = fmt.Sprintf("%s|p=%d|%s", c.ShapeKey(), s.cfg.P, fingerprint(relsOf(c), rels, versions))
		if entry, ok := s.cache.get(key); ok {
			cached = &entry
			alg = entry.alg
		}
	}

	res, err := c.Run(&e, rels, alg)
	if err != nil {
		return nil, err
	}
	if cacheable && cached == nil {
		s.cache.put(planEntry{key: key, alg: res.Algorithm, reason: res.Reason, rels: relsOf(c)})
	}
	reason := res.Reason
	if cached != nil {
		// The engine reports "forced by request" for the cached
		// algorithm; surface the original planner rationale instead.
		reason = cached.reason
	}

	out := res.Output
	total := out.Len()
	limit := total
	truncated := false
	if limit > s.cfg.MaxResultRows {
		limit = s.cfg.MaxResultRows
		truncated = true
	}
	rows := make([][]relation.Value, limit)
	for i := 0; i < limit; i++ {
		rows[i] = append([]relation.Value{}, out.Row(i)...)
	}

	resp := &Response{
		Kind:       c.Kind.String(),
		Algorithm:  string(res.Algorithm),
		Reason:     reason,
		Columns:    out.Attrs(),
		Rows:       total,
		Output:     rows,
		Truncated:  truncated,
		Cost:       Cost{MaxLoad: res.MaxLoad, Rounds: res.Rounds, TotalComm: res.TotalComm},
		Iterations: res.Iterations,
		CacheHit:   cached != nil,
	}
	if rec != nil {
		var buf bytes.Buffer
		if err := trace.WriteJSONL(&buf, rec.Events()); err != nil {
			return nil, fmt.Errorf("service: encode trace: %w", err)
		}
		resp.Trace = buf.String()
	}
	return resp, nil
}

// snapshot captures the current data set under one read lock: the
// relation map handed to execution, the catalog the compiler checks
// against, and the version counters the plan-cache fingerprint reads.
func (s *Service) snapshot() (map[string]*relation.Relation, *query.Catalog, map[string]uint64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rels := make(map[string]*relation.Relation, len(s.rels))
	cat := query.NewCatalog()
	versions := make(map[string]uint64, len(s.versions))
	for n, r := range s.rels {
		rels[n] = r
		cat.Add(n, r.Arity())
		versions[n] = s.versions[n]
	}
	return rels, cat, versions
}

// fingerprint hashes the statistics identity of exactly the relations
// one query reads (name, version, cardinality, sorted): the plan cache
// key component that changes when — and only when — data the planner
// looked at changes.
func fingerprint(names []string, rels map[string]*relation.Relation, versions map[string]uint64) string {
	h := fnv.New64a()
	for _, n := range names {
		fmt.Fprintf(h, "%s/%d/%d;", n, versions[n], rels[n].Len())
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// relsOf lists the distinct catalog relations a compiled query reads —
// the plan cache invalidation index.
func relsOf(c *query.Compiled) []string {
	set := map[string]bool{}
	for _, src := range c.RelFor {
		set[src] = true
	}
	if c.Recursive != nil {
		set[c.Recursive.EdgeRel] = true
		if c.Recursive.SourceRel != "" {
			set[c.Recursive.SourceRel] = true
		}
	}
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Metrics is the /metrics snapshot.
type Metrics struct {
	Queries           uint64            `json:"queries"`
	Failed            uint64            `json:"failed"`
	Shed              uint64            `json:"shed"`
	InflightHighWater int               `json:"inflight_high_water"`
	PlanCache         CacheStats        `json:"plan_cache"`
	QuotaRejects      map[string]uint64 `json:"quota_rejects,omitempty"`
}

// Snapshot returns current service counters.
func (s *Service) Snapshot() Metrics {
	s.statsMu.Lock()
	q, f := s.queries, s.failed
	s.statsMu.Unlock()
	return Metrics{
		Queries:           q,
		Failed:            f,
		Shed:              s.admit.Shed(),
		InflightHighWater: s.admit.HighWater(),
		PlanCache:         s.cache.stats(),
		QuotaRejects:      s.quota.Rejects(),
	}
}
