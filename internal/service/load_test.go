package service

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestLoadMultiTenant drives the in-process service with a concurrent
// Zipf-distributed tenant mix and asserts the three multi-tenant
// promises at once:
//
//  1. admission control held: the in-flight high-water mark never
//     exceeded MaxInflight;
//  2. quotas isolate tenants: the head-of-Zipf tenant exhausts its
//     bucket and collects 429-class errors while every other tenant's
//     requests all succeed;
//  3. the plan cache works under concurrency: the workload repeats a
//     handful of shapes, so the hit rate clears a floor.
//
// The quota clock is frozen, so token refill never blurs the
// pass/reject split. Run under -race in CI.
func TestLoadMultiTenant(t *testing.T) {
	const (
		tenants  = 6
		requests = 200
		workers  = 8
	)
	// Deterministic Zipf tenant sequence, heaviest tenant first.
	rng := rand.New(rand.NewSource(42))
	zipf := rand.NewZipf(rng, 1.5, 1, tenants-1)
	seq := make([]int, requests)
	counts := make([]int, tenants)
	for i := range seq {
		seq[i] = int(zipf.Uint64())
		counts[seq[i]]++
	}
	// Burst sits between the hog's demand and everyone else's, so the
	// hog must get throttled and nobody else can be.
	maxOther := 0
	for i := 1; i < tenants; i++ {
		if counts[i] > maxOther {
			maxOther = counts[i]
		}
	}
	if counts[0] <= maxOther {
		t.Fatalf("zipf mix not skewed enough: hog %d vs max other %d", counts[0], maxOther)
	}
	burst := float64(maxOther + (counts[0]-maxOther)/2)

	t0 := time.Unix(0, 0)
	s := testService(Config{
		P:            4,
		MaxInflight:  3,
		MaxQueue:     workers,
		QueueTimeout: 5 * time.Second,
		QuotaRate:    0.000001, // effectively no refill under the frozen clock
		QuotaBurst:   burst,
		Clock:        func() time.Time { return t0 },
	})

	shapes := []string{
		"q(x, y, z) :- R(x, y), S(y, z).",
		"tri(x, y, z) :- R(x, y), S(y, z), T(z, x).",
		"agg(x, sum(z)) :- R(x, y), S(y, z).",
	}

	var (
		mu       sync.Mutex
		ok       = make([]int, tenants)
		throttle = make([]int, tenants)
	)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				tenant := seq[i]
				_, err := s.Do(Request{
					Tenant: fmt.Sprintf("tenant-%d", tenant),
					Query:  shapes[i%len(shapes)],
				})
				mu.Lock()
				switch {
				case err == nil:
					ok[tenant]++
				case func() bool { var qe *QuotaError; return errors.As(err, &qe) }():
					throttle[tenant]++
				default:
					mu.Unlock()
					t.Errorf("request %d (tenant %d): %v", i, tenant, err)
					return
				}
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < requests; i++ {
		next <- i
	}
	close(next)
	wg.Wait()

	m := s.Snapshot()
	if hw := m.InflightHighWater; hw > 3 {
		t.Errorf("admission bound violated: high water %d > MaxInflight 3", hw)
	}
	if throttle[0] == 0 {
		t.Errorf("hog tenant (%d requests, burst %.0f) never throttled", counts[0], burst)
	}
	if got := ok[0] + throttle[0]; got != counts[0] {
		t.Errorf("hog accounting: %d+%d != %d", ok[0], throttle[0], counts[0])
	}
	for i := 1; i < tenants; i++ {
		if throttle[i] != 0 {
			t.Errorf("tenant %d throttled %d times despite staying under burst", i, throttle[i])
		}
		if ok[i] != counts[i] {
			t.Errorf("tenant %d: %d of %d requests succeeded", i, ok[i], counts[i])
		}
	}
	// Three shapes over one static data set → three misses, everything
	// else hits (concurrent first-touch can add a handful of extra
	// misses, hence a floor rather than an exact count).
	pc := m.PlanCache
	total := pc.Hits + pc.Misses
	if total == 0 {
		t.Fatal("plan cache never consulted")
	}
	if rate := float64(pc.Hits) / float64(total); rate < 0.8 {
		t.Errorf("plan cache hit rate %.2f < 0.80 (%+v)", rate, pc)
	}
	if m.Shed != 0 {
		t.Errorf("requests shed despite generous queue: %d", m.Shed)
	}
}

// BenchmarkServiceSustained measures end-to-end service throughput on a
// repeated shape mix (plan cache hot) and reports sustained QPS and
// p99 latency alongside ns/op — the numbers EXPERIMENTS.md E27 records.
func BenchmarkServiceSustained(b *testing.B) {
	s := testService(Config{P: 4, MaxInflight: 8, MaxQueue: 64, QueueTimeout: time.Second})
	shapes := []string{
		"q(x, y, z) :- R(x, y), S(y, z).",
		"agg(x, sum(z)) :- R(x, y), S(y, z).",
	}
	// Warm the plan cache so the benchmark measures the steady state.
	for _, q := range shapes {
		if _, err := s.Do(Request{Tenant: "warm", Query: q}); err != nil {
			b.Fatal(err)
		}
	}
	var mu sync.Mutex
	lat := make([]time.Duration, 0, b.N)
	start := time.Now()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			t0 := time.Now()
			if _, err := s.Do(Request{Tenant: "bench", Query: shapes[i%len(shapes)]}); err != nil {
				b.Error(err)
				return
			}
			d := time.Since(t0)
			mu.Lock()
			lat = append(lat, d)
			mu.Unlock()
			i++
		}
	})
	b.StopTimer()
	elapsed := time.Since(start)
	if len(lat) == 0 {
		return
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p99 := lat[len(lat)*99/100]
	b.ReportMetric(float64(len(lat))/elapsed.Seconds(), "qps")
	b.ReportMetric(float64(p99.Microseconds()), "p99-µs")
}
