// Package service is the multi-tenant query service behind cmd/mpcserve:
// it registers relations, compiles Datalog text through internal/query,
// and executes on the core engine with admission control (bounded
// in-flight plus a deadline-shed queue), per-tenant token-bucket
// quotas, and an LRU plan cache keyed on normalized query shape,
// cluster size, and a statistics fingerprint.
package service
