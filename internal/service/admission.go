package service

import (
	"errors"
	"sync"
	"time"
)

// ErrOverloaded is returned when a request cannot be admitted: every
// execution slot is busy and either the wait queue is full or the
// request's queue deadline expired before a slot freed. HTTP maps it
// to 503.
var ErrOverloaded = errors.New("service: overloaded, request shed")

// admission bounds concurrent query execution. MaxInflight slots run at
// once; up to maxQueue further requests wait, each for at most the
// queue timeout, and everything beyond that is shed immediately. The
// controller also meters its own behavior: the in-flight high-water
// mark proves the bound held, the shed counter feeds /metrics.
type admission struct {
	slots chan struct{}

	mu        sync.Mutex
	waiting   int
	maxQueue  int
	timeout   time.Duration
	inflight  int
	highWater int
	shed      uint64
}

func newAdmission(maxInflight, maxQueue int, timeout time.Duration) *admission {
	return &admission{
		slots:    make(chan struct{}, maxInflight),
		maxQueue: maxQueue,
		timeout:  timeout,
	}
}

// acquire claims an execution slot, waiting up to the queue timeout.
func (a *admission) acquire() error {
	select {
	case a.slots <- struct{}{}:
		a.admitted()
		return nil
	default:
	}
	a.mu.Lock()
	if a.waiting >= a.maxQueue {
		a.shed++
		a.mu.Unlock()
		return ErrOverloaded
	}
	a.waiting++
	a.mu.Unlock()

	timer := time.NewTimer(a.timeout)
	defer timer.Stop()
	select {
	case a.slots <- struct{}{}:
		a.mu.Lock()
		a.waiting--
		a.mu.Unlock()
		a.admitted()
		return nil
	case <-timer.C:
		a.mu.Lock()
		a.waiting--
		a.shed++
		a.mu.Unlock()
		return ErrOverloaded
	}
}

func (a *admission) admitted() {
	a.mu.Lock()
	a.inflight++
	if a.inflight > a.highWater {
		a.highWater = a.inflight
	}
	a.mu.Unlock()
}

func (a *admission) release() {
	a.mu.Lock()
	a.inflight--
	a.mu.Unlock()
	<-a.slots
}

// HighWater reports the maximum number of queries that were ever
// executing at once — never above MaxInflight if the controller works.
func (a *admission) HighWater() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.highWater
}

// Shed reports how many requests were rejected with ErrOverloaded.
func (a *admission) Shed() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.shed
}
