package service

import (
	"fmt"
	"sync"
	"time"
)

// QuotaError reports a tenant that has exhausted its token bucket.
// HTTP maps it to 429.
type QuotaError struct {
	Tenant string
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("service: tenant %q over quota", e.Tenant)
}

// quotas is a per-tenant token bucket: each tenant accrues rate tokens
// per second up to burst, and every query spends one token. The clock
// is injectable so tests can drive refill deterministically.
type quotas struct {
	mu      sync.Mutex
	rate    float64
	burst   float64
	now     func() time.Time
	buckets map[string]*bucket
	rejects map[string]uint64
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newQuotas(rate, burst float64, now func() time.Time) *quotas {
	if now == nil {
		now = time.Now
	}
	return &quotas{
		rate:    rate,
		burst:   burst,
		now:     now,
		buckets: map[string]*bucket{},
		rejects: map[string]uint64{},
	}
}

// allow spends one token from tenant's bucket, refilling it first.
// A nil receiver (quotas disabled) always allows.
func (q *quotas) allow(tenant string) error {
	if q == nil {
		return nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	t := q.now()
	b := q.buckets[tenant]
	if b == nil {
		b = &bucket{tokens: q.burst, last: t}
		q.buckets[tenant] = b
	} else {
		b.tokens += t.Sub(b.last).Seconds() * q.rate
		if b.tokens > q.burst {
			b.tokens = q.burst
		}
		b.last = t
	}
	if b.tokens < 1 {
		q.rejects[tenant]++
		return &QuotaError{Tenant: tenant}
	}
	b.tokens--
	return nil
}

// Rejects snapshots the per-tenant 429 counts.
func (q *quotas) Rejects() map[string]uint64 {
	if q == nil {
		return nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make(map[string]uint64, len(q.rejects))
	for k, v := range q.rejects {
		out[k] = v
	}
	return out
}
