package service

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mpcquery/internal/relation"
	"mpcquery/internal/workload"
)

func testService(cfg Config) *Service {
	s := New(cfg)
	s.Register(workload.Uniform("R", []string{"a", "b"}, 120, 40, 1))
	s.Register(workload.Uniform("S", []string{"a", "b"}, 120, 40, 2))
	s.Register(workload.Uniform("T", []string{"a", "b"}, 120, 40, 3))
	return s
}

func TestDoJoinQuery(t *testing.T) {
	s := testService(Config{P: 4})
	resp, err := s.Do(Request{Tenant: "t1", Query: "q(x, y, z) :- R(x, y), S(y, z)."})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Kind != "join" || resp.Algorithm == "" {
		t.Fatalf("resp %+v", resp)
	}
	if len(resp.Columns) != 3 || resp.Columns[0] != "x" {
		t.Fatalf("columns %v", resp.Columns)
	}
	if resp.Rows != len(resp.Output) && !resp.Truncated {
		t.Fatalf("rows %d output %d truncated %v", resp.Rows, len(resp.Output), resp.Truncated)
	}
	if resp.CacheHit {
		t.Fatal("first query cannot hit the plan cache")
	}
}

func TestDoResultCap(t *testing.T) {
	s := testService(Config{P: 4, MaxResultRows: 5})
	resp, err := s.Do(Request{Query: "q(x, y) :- R(x, y)."})
	if err != nil {
		t.Fatal(err)
	}
	// Execution is set-semantics, so dedup may shave a few of the 120
	// generated tuples; the cap and the full count are what matter.
	if resp.Rows <= 5 || len(resp.Output) != 5 || !resp.Truncated {
		t.Fatalf("rows=%d len=%d truncated=%v", resp.Rows, len(resp.Output), resp.Truncated)
	}
}

func TestDoParseAndCompileErrors(t *testing.T) {
	s := testService(Config{P: 4})
	_, err := s.Do(Request{Query: "q(x) :- R(x,"})
	if err == nil || !strings.HasPrefix(err.Error(), "query: ") {
		t.Fatalf("parse error %v", err)
	}
	_, err = s.Do(Request{Query: "q(x, y) :- Missing(x, y)."})
	if err == nil || !strings.Contains(err.Error(), `unknown relation "Missing"`) {
		t.Fatalf("compile error %v", err)
	}
}

// Cache behavior: alpha-equivalent shapes hit, Register invalidates
// only plans that read the re-registered relation, and the cached
// response keeps the planner's original rationale.
func TestPlanCacheLifecycle(t *testing.T) {
	s := testService(Config{P: 4})
	first, err := s.Do(Request{Query: "q(x, y, z) :- R(x, y), S(y, z)."})
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.Do(Request{Query: "other(a, b, c) :- R(a, b), S(b, c)."})
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Fatal("alpha-equivalent query missed the plan cache")
	}
	if second.Algorithm != first.Algorithm || second.Reason != first.Reason {
		t.Fatalf("cached response diverged: %+v vs %+v", second, first)
	}
	// A plan over T is untouched by re-registering R.
	if _, err := s.Do(Request{Query: "p(x, y) :- T(x, y)."}); err != nil {
		t.Fatal(err)
	}
	s.Register(workload.Uniform("R", []string{"a", "b"}, 200, 40, 9))
	third, err := s.Do(Request{Query: "q(x, y, z) :- R(x, y), S(y, z)."})
	if err != nil {
		t.Fatal(err)
	}
	if third.CacheHit {
		t.Fatal("plan survived invalidation of a relation it read")
	}
	tq, err := s.Do(Request{Query: "p(x, y) :- T(x, y)."})
	if err != nil {
		t.Fatal(err)
	}
	if !tq.CacheHit {
		t.Fatal("plan over T was wrongly invalidated by re-registering R")
	}
	st := s.Snapshot().PlanCache
	if st.Invalidations == 0 {
		t.Fatalf("invalidation counter not incremented: %+v", st)
	}
}

func TestDoRecursive(t *testing.T) {
	s := New(Config{P: 4})
	s.Register(relation.FromRows("E", []string{"s", "d"}, [][]relation.Value{{1, 2}, {2, 3}, {3, 4}}))
	resp, err := s.Do(Request{Query: "tc(x, y) :- E(x, y).\ntc(x, z) :- tc(x, y), E(y, z)."})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Kind != "recursive" || resp.Rows != 6 || resp.Iterations < 1 {
		t.Fatalf("resp %+v", resp)
	}
	if resp.CacheHit {
		t.Fatal("recursive plans are not cacheable")
	}
}

func TestDoTrace(t *testing.T) {
	s := testService(Config{P: 4})
	resp, err := s.Do(Request{Query: "q(x, y, z) :- R(x, y), S(y, z).", Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Trace == "" {
		t.Fatal("trace requested but empty")
	}
	line := strings.SplitN(resp.Trace, "\n", 2)[0]
	var ev map[string]any
	if err := json.Unmarshal([]byte(line), &ev); err != nil {
		t.Fatalf("trace is not JSONL: %v in %q", err, line)
	}
	plain, err := s.Do(Request{Query: "q(x, y, z) :- R(x, y), S(y, z)."})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Trace != "" {
		t.Fatal("trace returned without being requested")
	}
}

func TestQuotaBucket(t *testing.T) {
	t0 := time.Unix(1000, 0)
	now := t0
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	q := newQuotas(1, 3, clock)
	for i := 0; i < 3; i++ {
		if err := q.allow("a"); err != nil {
			t.Fatalf("burst request %d rejected: %v", i, err)
		}
	}
	err := q.allow("a")
	var qe *QuotaError
	if !errors.As(err, &qe) || qe.Tenant != "a" {
		t.Fatalf("expected quota error for a, got %v", err)
	}
	if err := q.allow("b"); err != nil {
		t.Fatalf("tenant b throttled by a's bucket: %v", err)
	}
	// One second refills one token at rate 1.
	mu.Lock()
	now = t0.Add(time.Second)
	mu.Unlock()
	if err := q.allow("a"); err != nil {
		t.Fatalf("refill failed: %v", err)
	}
	if err := q.allow("a"); err == nil {
		t.Fatal("second token appeared from a one-second refill at rate 1")
	}
	if q.Rejects()["a"] != 2 {
		t.Fatalf("rejects %v", q.Rejects())
	}
}

func TestAdmissionShedding(t *testing.T) {
	a := newAdmission(1, 1, 20*time.Millisecond)
	if err := a.acquire(); err != nil {
		t.Fatal(err)
	}
	// Queue slot: waits, times out, shed.
	start := time.Now()
	if err := a.acquire(); err != ErrOverloaded {
		t.Fatalf("queued request not shed: %v", err)
	}
	if time.Since(start) < 15*time.Millisecond {
		t.Fatal("shed before the queue deadline")
	}
	// Fill the queue, then an extra request sheds immediately.
	done := make(chan error, 1)
	go func() { done <- a.acquire() }()
	for {
		a.mu.Lock()
		w := a.waiting
		a.mu.Unlock()
		if w == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if err := a.acquire(); err != ErrOverloaded {
		t.Fatalf("over-queue request not shed immediately: %v", err)
	}
	a.release()
	if err := <-done; err != nil {
		t.Fatalf("queued request should win the freed slot: %v", err)
	}
	a.release()
	if a.HighWater() != 1 {
		t.Fatalf("high water %d", a.HighWater())
	}
	if a.Shed() != 2 {
		t.Fatalf("shed %d", a.Shed())
	}
}

func TestPlanCacheLRU(t *testing.T) {
	c := newPlanCache(2)
	c.put(planEntry{key: "a", rels: []string{"R"}})
	c.put(planEntry{key: "b", rels: []string{"S"}})
	if _, ok := c.get("a"); !ok {
		t.Fatal("a missing")
	}
	c.put(planEntry{key: "c", rels: []string{"R"}}) // evicts b (LRU)
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a evicted despite being recently used")
	}
	c.invalidate("R")
	if _, ok := c.get("a"); ok {
		t.Fatal("a survived invalidation")
	}
	st := c.stats()
	if st.Invalidations != 2 || st.Entries != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestHTTPStatuses(t *testing.T) {
	t0 := time.Unix(0, 0)
	s := testService(Config{P: 4, QuotaRate: 0.0001, QuotaBurst: 1, Clock: func() time.Time { return t0 }})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	post := func(body string) (*http.Response, map[string]any) {
		t.Helper()
		resp, err := http.Post(srv.URL+"/query", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		return resp, m
	}

	resp, m := post(`{"tenant":"t1","query":"q(x, y, z) :- R(x, y), S(y, z)."}`)
	if resp.StatusCode != 200 || m["algorithm"] == "" {
		t.Fatalf("ok query: %d %v", resp.StatusCode, m)
	}
	resp, m = post(`{"tenant":"t2","query":"q(x) :- R(x,"}`)
	if resp.StatusCode != 400 || !strings.Contains(m["error"].(string), "query: ") {
		t.Fatalf("parse error: %d %v", resp.StatusCode, m)
	}
	resp, _ = post(`{"tenant":"t1","query":"q(x, y) :- R(x, y)."}`)
	if resp.StatusCode != 429 {
		t.Fatalf("second t1 query should be over quota, got %d", resp.StatusCode)
	}
	resp, _ = post(`not json`)
	if resp.StatusCode != 400 {
		t.Fatalf("bad JSON: %d", resp.StatusCode)
	}
	resp, _ = post(`{}`)
	if resp.StatusCode != 400 {
		t.Fatalf("empty query: %d", resp.StatusCode)
	}

	r, err := http.Get(srv.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /query: %d", r.StatusCode)
	}
	r, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != 200 {
		t.Fatalf("healthz: %d", r.StatusCode)
	}
	r, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metrics Metrics
	if err := json.NewDecoder(r.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if metrics.Queries < 3 || metrics.QuotaRejects["t1"] != 1 {
		t.Fatalf("metrics %+v", metrics)
	}
}
