package service

import (
	"encoding/json"
	"errors"
	"net/http"

	"mpcquery/internal/query"
)

// Handler exposes the service over HTTP:
//
//	POST /query    {"tenant","query","trace"} → Response JSON
//	GET  /healthz  liveness probe
//	GET  /metrics  Metrics JSON
//
// Status codes classify failures: 400 for parse/compile errors (body
// carries the positioned message), 429 over quota, 503 shed by
// admission control, 500 execution failure.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"status":"ok"}` + "\n"))
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Snapshot())
	})
	return mux
}

type errorBody struct {
	Error string `json:"error"`
}

func (s *Service) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST only"})
		return
	}
	var req Request
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "invalid JSON: " + err.Error()})
		return
	}
	if req.Query == "" {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "missing query"})
		return
	}
	resp, err := s.Do(req)
	if err != nil {
		writeJSON(w, statusFor(err), errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func statusFor(err error) int {
	var qe *query.Error
	var quota *QuotaError
	switch {
	case errors.As(err, &qe):
		return http.StatusBadRequest
	case errors.As(err, &quota):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrOverloaded):
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}
