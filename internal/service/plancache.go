package service

import (
	"container/list"
	"sync"

	"mpcquery/internal/core"
)

// planCache memoizes planner decisions keyed on the query's normalized
// shape, the cluster size, and a fingerprint of the statistics the
// planner saw (per-relation version and cardinality). Equal keys mean
// the planner would decide identically, so a hit skips planning and
// forces the cached algorithm. Register invalidates every entry that
// read the re-registered relation.
type planCache struct {
	mu            sync.Mutex
	cap           int
	ll            *list.List // front = most recent
	items         map[string]*list.Element
	hits          uint64
	misses        uint64
	invalidations uint64
}

type planEntry struct {
	key    string
	alg    core.Algorithm
	reason string
	// rels are the catalog relations the plan's statistics covered —
	// the invalidation index.
	rels []string
}

func newPlanCache(capacity int) *planCache {
	return &planCache{
		cap:   capacity,
		ll:    list.New(),
		items: map[string]*list.Element{},
	}
}

func (c *planCache) get(key string) (planEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(planEntry), true
	}
	c.misses++
	return planEntry{}, false
}

func (c *planCache) put(e planEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[e.key]; ok {
		el.Value = e
		c.ll.MoveToFront(el)
		return
	}
	c.items[e.key] = c.ll.PushFront(e)
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(planEntry).key)
	}
}

// invalidate drops every entry whose plan depended on relation name.
func (c *planCache) invalidate(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var next *list.Element
	for el := c.ll.Front(); el != nil; el = next {
		next = el.Next()
		e := el.Value.(planEntry)
		for _, r := range e.rels {
			if r == name {
				c.ll.Remove(el)
				delete(c.items, e.key)
				c.invalidations++
				break
			}
		}
	}
}

// CacheStats is a point-in-time snapshot of the plan cache counters.
type CacheStats struct {
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Invalidations uint64 `json:"invalidations"`
	Entries       int    `json:"entries"`
}

func (c *planCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Invalidations: c.invalidations, Entries: c.ll.Len()}
}
