package sortmpc

import (
	"fmt"
	"testing"

	"mpcquery/internal/mpc"
	"mpcquery/internal/relation"
	"mpcquery/internal/testkit"
	"mpcquery/internal/trace"
)

// Differential tests: the parallel sorts vs the sequential stdlib-sort
// oracle over skewed and skew-free key distributions. Keys are (k, uid)
// with uid unique, so the total order is unambiguous and PSRS output
// can be compared for exact sequence equality.

// genSortInput builds a relation (k, uid): k follows the requested skew
// (the regime that stresses splitter selection), uid is the row index.
func genSortInput(skew testkit.Skew, tuples int, seed int64) *relation.Relation {
	src := testkit.GenRelation("src", []string{"k", "pad"}, skew, testkit.GenConfig{Tuples: tuples}, seed)
	rel := relation.New("R", "k", "uid")
	for i := 0; i < src.Len(); i++ {
		rel.Append(src.Row(i)[0], relation.Value(i))
	}
	return rel
}

// gatherInServerOrder concatenates outName's fragments by server id —
// the order in which a range-partitioned sort's output is globally
// sorted.
func gatherInServerOrder(c *mpc.Cluster, outName string, attrs []string) *relation.Relation {
	out := relation.New(outName, attrs...)
	for i := 0; i < c.P(); i++ {
		if f := c.Server(i).Rel(outName); f != nil {
			out.AppendAll(f.Project(outName, attrs...))
		}
	}
	return out
}

func assertExactOrder(t *testing.T, got, want *relation.Relation) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("got %d tuples, want %d", got.Len(), want.Len())
	}
	for i := 0; i < got.Len(); i++ {
		gr, wr := got.Row(i), want.Row(i)
		for j := range gr {
			if gr[j] != wr[j] {
				t.Fatalf("row %d: got %v, want %v", i, gr, wr)
			}
		}
	}
}

// TestPSRSDiff: regular-sampled PSRS is exactly two rounds (sample
// exchange + range partition) and its concatenated output must equal
// the oracle sort as a sequence.
func TestPSRSDiff(t *testing.T) {
	keys := []string{"k", "uid"}
	testkit.Sweep(t, testkit.DefaultConfig(), func(t *testing.T, p int, seed int64, skew testkit.Skew) {
		rel := genSortInput(skew, 160, seed)
		want := testkit.OracleSort(rel, keys...)
		c := mpc.NewCluster(p, seed)
		rec := trace.NewRecorder()
		c.SetTracer(rec)
		c.ScatterRoundRobin(rel)
		PSRS(c, "R", keys, "out")
		testkit.AssertRounds(t, c, 2)
		if err := VerifySorted(c, "out", keys); err != nil {
			t.Fatalf("VerifySorted: %v", err)
		}
		assertExactOrder(t, gatherInServerOrder(c, "out", keys), want)
		testkit.AssertTraceConsistent(t, c, rec)
	})
}

// TestPSRSRandomSampleDiff: the random-splitter variant has the same
// two-round structure and the same output contract (balance, not
// order, is what sampling affects).
func TestPSRSRandomSampleDiff(t *testing.T) {
	keys := []string{"k", "uid"}
	testkit.Sweep(t, testkit.DefaultConfig(), func(t *testing.T, p int, seed int64, skew testkit.Skew) {
		rel := genSortInput(skew, 160, seed)
		want := testkit.OracleSort(rel, keys...)
		c := mpc.NewCluster(p, seed)
		rec := trace.NewRecorder()
		c.SetTracer(rec)
		c.ScatterRoundRobin(rel)
		PSRSRandomSample(c, "R", keys, "out", 8)
		testkit.AssertRounds(t, c, 2)
		if err := VerifySorted(c, "out", keys); err != nil {
			t.Fatalf("VerifySorted: %v", err)
		}
		assertExactOrder(t, gatherInServerOrder(c, "out", keys), want)
		testkit.AssertTraceConsistent(t, c, rec)
	})
}

// TestFanLimitedSortDiff: with fan-out limited to fan, sorting takes
// exactly 2·⌈log_fan p⌉ rounds (sample + partition per level) — the
// constructive side of the Ω(log_L N) round lower bound.
func TestFanLimitedSortDiff(t *testing.T) {
	keys := []string{"k", "uid"}
	logCeil := func(fan, p int) int {
		levels := 0
		for g := p; g > 1; g = (g + fan - 1) / fan {
			levels++
		}
		return levels
	}
	for _, fan := range []int{2, 3} {
		fan := fan
		t.Run(fmt.Sprintf("fan%d", fan), func(t *testing.T) {
			testkit.Sweep(t, testkit.DefaultConfig(), func(t *testing.T, p int, seed int64, skew testkit.Skew) {
				rel := genSortInput(skew, 160, seed)
				want := testkit.OracleSort(rel, keys...)
				c := mpc.NewCluster(p, seed)
				rec := trace.NewRecorder()
				c.SetTracer(rec)
				c.ScatterRoundRobin(rel)
				FanLimitedSort(c, "R", keys, "out", fan)
				testkit.AssertRounds(t, c, 2*logCeil(fan, p))
				if err := VerifySorted(c, "out", keys); err != nil {
					t.Fatalf("VerifySorted: %v", err)
				}
				assertExactOrder(t, gatherInServerOrder(c, "out", keys), want)
				testkit.AssertTraceConsistent(t, c, rec)
			})
		})
	}
}
