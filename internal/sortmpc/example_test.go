package sortmpc_test

import (
	"fmt"

	"mpcquery/internal/mpc"
	"mpcquery/internal/relation"
	"mpcquery/internal/sortmpc"
)

// ExamplePSRS sorts a small distributed relation by key with parallel
// sort by regular sampling (slides 100–101).
func ExamplePSRS() {
	c := mpc.NewCluster(4, 1)
	rel := relation.New("R", "k", "v")
	for i := 99; i >= 0; i-- {
		rel.Append(relation.Value(i), relation.Value(i*10))
	}
	c.ScatterRoundRobin(rel)
	res := sortmpc.PSRS(c, "R", []string{"k"}, "sorted")
	fmt.Println("rounds:", res.Rounds)
	fmt.Println("sorted:", sortmpc.VerifySorted(c, "sorted", []string{"k"}) == nil)
	fmt.Println("total:", c.TotalLen("sorted"))
	// Output:
	// rounds: 2
	// sorted: true
	// total: 100
}
