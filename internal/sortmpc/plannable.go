package sortmpc

import (
	"fmt"

	"mpcquery/internal/cost"
)

// Plannables describes parallel sorting to the planner. Sorting is a
// primitive, not a conjunctive-query strategy — sortjoin uses it
// internally — so the descriptor never applies; it appears in verbose
// EXPLAIN output with that explanation.
func Plannables() []cost.Plannable {
	return []cost.Plannable{
		{
			Alg:        "psrs",
			Doc:        "parallel sample sort (PSRS), L = O(IN/p + p²) in 2 rounds (slide 31)",
			Executable: false,
			Applies: func(st *cost.QueryStats) error {
				return fmt.Errorf("sorting primitive: used inside sortjoin, not a query strategy")
			},
			Predict: func(st *cost.QueryStats) (cost.Estimate, error) {
				p := float64(st.P)
				return cost.Estimate{L: float64(st.IN)/p + p*p, R: 2, C: float64(st.IN) + p*p}, nil
			},
		},
	}
}
