package sortmpc

import (
	"fmt"
	"testing"

	"mpcquery/internal/mpc"
	"mpcquery/internal/workload"
)

func BenchmarkPSRS(b *testing.B) {
	const n = 200000
	for _, p := range []int{8, 32} {
		b.Run(fmt.Sprintf("p%d", p), func(b *testing.B) {
			rel := workload.Uniform("R", []string{"k", "v"}, n, 1<<30, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c := mpc.NewCluster(p, 1)
				c.ScatterRoundRobin(rel)
				PSRS(c, "R", []string{"k"}, "sorted")
			}
		})
	}
}

func BenchmarkFanLimitedSort(b *testing.B) {
	const n, p = 100000, 32
	for _, fan := range []int{2, 8} {
		b.Run(fmt.Sprintf("fan%d", fan), func(b *testing.B) {
			rel := workload.Uniform("R", []string{"k", "v"}, n, 1<<30, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c := mpc.NewCluster(p, 1)
				c.ScatterRoundRobin(rel)
				FanLimitedSort(c, "R", []string{"k"}, "sorted", fan)
			}
		})
	}
}
