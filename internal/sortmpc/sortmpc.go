// Package sortmpc implements parallel sorting in the MPC model
// (slides 99–106): PSRS — Parallel Sort by Regular Sampling — with both
// the classical regular-sample splitter selection and the modern
// random-sampling variant, plus a fan-limited multi-round sort that
// demonstrates the Goodrich-style log_L N round/load trade-off when the
// per-round fan-out is constrained.
//
// All sorts operate on a distributed relation (one fragment per server)
// ordered lexicographically by a list of key attributes; on completion
// server i holds the i-th contiguous key range, locally sorted, so the
// concatenation over servers in id order is globally sorted. Composite
// keys matter: the parallel sort join sorts by (joinKey, uniqueId) so
// that a heavy join value can split across servers while the partition
// stays balanced.
package sortmpc

import (
	"fmt"
	"sort"

	"mpcquery/internal/mpc"
	"mpcquery/internal/relation"
	"mpcquery/internal/trace"
)

// Result reports what a distributed sort did.
type Result struct {
	OutName   string
	Splitters [][]relation.Value // p-1 composite-key interval boundaries
	Rounds    int                // rounds used by this sort alone
}

// LexLess compares two composite keys lexicographically.
func LexLess(a, b []relation.Value) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// IntervalOf returns the index of the splitter interval containing key
// k: interval i covers (splitters[i-1], splitters[i]]; keys above the
// last splitter go to the final interval. With no splitters it returns
// 0.
func IntervalOf(k []relation.Value, splitters [][]relation.Value) int {
	lo, hi := 0, len(splitters)
	for lo < hi {
		mid := (lo + hi) / 2
		if LexLess(splitters[mid], k) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// PSRS sorts the distributed relation name by keyAttrs using parallel
// sort by regular sampling (slides 100–101):
//
//  1. each server sorts its fragment locally and broadcasts p−1
//     regular samples;
//  2. every server independently derives identical global splitters by
//     sorting the p(p−1) samples and taking every p-th;
//  3. tuples are routed to the server owning their key interval;
//  4. each server sorts its received interval locally.
//
// The sorted output is stored under outName. Two communication rounds
// (sample broadcast + partition).
func PSRS(c *mpc.Cluster, name string, keyAttrs []string, outName string) *Result {
	return psrs(c, name, keyAttrs, outName, true, 0)
}

// PSRSRandomSample is PSRS with the "modern implementation" splitter
// selection (slide 102): instead of sorting locally first, each server
// broadcasts samplesPerServer random samples of its fragment. Local
// sorting happens only once, after partitioning.
func PSRSRandomSample(c *mpc.Cluster, name string, keyAttrs []string, outName string, samplesPerServer int) *Result {
	return psrs(c, name, keyAttrs, outName, false, samplesPerServer)
}

func keyCols(frag *relation.Relation, keyAttrs []string) []int {
	cols := make([]int, len(keyAttrs))
	for i, a := range keyAttrs {
		cols[i] = frag.MustCol(a)
	}
	return cols
}

func keyOf(row []relation.Value, cols []int) []relation.Value {
	k := make([]relation.Value, len(cols))
	for i, c := range cols {
		k[i] = row[c]
	}
	return k
}

func psrs(c *mpc.Cluster, name string, keyAttrs []string, outName string, regular bool, samplesPerServer int) *Result {
	if len(keyAttrs) == 0 {
		panic("sortmpc: no key attributes")
	}
	p := c.P()
	variant := "regular-sample"
	if !regular {
		variant = "random-sample"
	}
	trace.Annotatef(c, "sortmpc.PSRS %s by %v (%s)", name, keyAttrs, variant)
	startRounds := c.Metrics().Rounds()
	arity := len(keyAttrs)
	sampleAttrs := make([]string, arity)
	for i := range sampleAttrs {
		sampleAttrs[i] = fmt.Sprintf("k%d", i)
	}
	// Round 1: local sample selection + broadcast.
	c.Round("sort:sample", func(s *mpc.Server, out *mpc.Out) {
		frag := s.Rel(name)
		st := out.Open(outName+":samples", sampleAttrs...)
		if frag == nil || frag.Len() == 0 {
			return
		}
		cols := keyCols(frag, keyAttrs)
		if regular {
			frag.SortBy(keyAttrs...)
			n := frag.Len()
			for i := 1; i < p; i++ {
				idx := i * n / p
				if idx >= n {
					idx = n - 1
				}
				st.Broadcast(keyOf(frag.Row(idx), cols)...)
			}
		} else {
			n := frag.Len()
			for i := 0; i < samplesPerServer; i++ {
				st.Broadcast(keyOf(frag.Row(s.Rng().Intn(n)), cols)...)
			}
		}
	})
	// Every server received the identical sample multiset; derive the
	// splitters once on the driver from server 0's copy.
	var samples [][]relation.Value
	if srel := c.Server(0).Rel(outName + ":samples"); srel != nil {
		for i := 0; i < srel.Len(); i++ {
			samples = append(samples, append([]relation.Value(nil), srel.Row(i)...))
		}
	}
	sort.Slice(samples, func(a, b int) bool { return LexLess(samples[a], samples[b]) })
	var splitters [][]relation.Value
	if len(samples) > 0 {
		for i := 1; i < p; i++ {
			idx := i * len(samples) / p
			if idx >= len(samples) {
				idx = len(samples) - 1
			}
			splitters = append(splitters, samples[idx])
		}
	}
	c.DeleteAll(outName + ":samples")

	// Round 2: partition by splitter interval.
	c.Round("sort:partition", func(s *mpc.Server, out *mpc.Out) {
		frag := s.Rel(name)
		if frag == nil || frag.Len() == 0 {
			return
		}
		st := out.Open(outName, frag.Attrs()...)
		cols := keyCols(frag, keyAttrs)
		for i := 0; i < frag.Len(); i++ {
			row := frag.Row(i)
			st.SendRow(IntervalOf(keyOf(row, cols), splitters), row)
		}
	})
	// Local sort of each interval.
	c.LocalStep(func(s *mpc.Server) {
		if frag := s.Rel(outName); frag != nil {
			frag.SortBy(keyAttrs...)
		}
	})
	return &Result{
		OutName:   outName,
		Splitters: splitters,
		Rounds:    c.Metrics().Rounds() - startRounds,
	}
}

// FanLimitedSort sorts like PSRS but limits each round's fan-out to at
// most fan destination groups per server, partitioning the servers
// hierarchically: round 1 splits the key space into `fan` coarse ranges
// owned by contiguous server groups, round 2 refines each group, and so
// on — ceil(log_fan p) partition levels in total. This mirrors the
// structure behind the Ω(log_L N) sorting round lower bound (slide
// 105): a bounded per-round fan-out (bounded L) forces logarithmically
// many rounds.
func FanLimitedSort(c *mpc.Cluster, name string, keyAttrs []string, outName string, fan int) *Result {
	if fan < 2 {
		panic(fmt.Sprintf("sortmpc: fan = %d, need ≥ 2", fan))
	}
	p := c.P()
	trace.Annotatef(c, "sortmpc.FanLimitedSort %s by %v (fan %d)", name, keyAttrs, fan)
	startRounds := c.Metrics().Rounds()
	cur := name
	level := 0
	groupSize := p
	for groupSize > 1 {
		next := fmt.Sprintf("%s:lvl%d", outName, level)
		sortFanLevel(c, cur, keyAttrs, next, fan, groupSize)
		if cur != name {
			c.DeleteAll(cur)
		}
		cur = next
		groupSize = (groupSize + fan - 1) / fan
		level++
	}
	// Rename the final level into outName and sort locally.
	final := cur
	c.LocalStep(func(s *mpc.Server) {
		if frag := s.Rel(final); frag != nil {
			frag.SortBy(keyAttrs...)
			s.Put(frag.Rename(outName))
			s.Delete(final)
		}
	})
	return &Result{OutName: outName, Rounds: c.Metrics().Rounds() - startRounds}
}

// sortFanLevel refines the assignment of tuples to server groups: the
// cluster is currently divided into groups of groupSize consecutive
// servers, each group owning a contiguous key range; this level splits
// every group into at most fan subgroups using sampled splitters.
func sortFanLevel(c *mpc.Cluster, name string, keyAttrs []string, outName string, fan, groupSize int) {
	p := c.P()
	arity := len(keyAttrs)
	sampleAttrs := make([]string, arity+1)
	sampleAttrs[0] = "grp"
	for i := 0; i < arity; i++ {
		sampleAttrs[i+1] = fmt.Sprintf("k%d", i)
	}
	c.Round("fansort:sample", func(s *mpc.Server, out *mpc.Out) {
		frag := s.Rel(name)
		st := out.Open(outName+":samples", sampleAttrs...)
		if frag == nil || frag.Len() == 0 {
			return
		}
		cols := keyCols(frag, keyAttrs)
		grp := s.ID() / groupSize
		n := frag.Len()
		for i := 0; i < fan*4; i++ {
			row := frag.Row(s.Rng().Intn(n))
			vals := append([]relation.Value{relation.Value(grp)}, keyOf(row, cols)...)
			st.Broadcast(vals...)
		}
	})
	groups := (p + groupSize - 1) / groupSize
	perGroup := make([][][]relation.Value, groups)
	if srel := c.Server(0).Rel(outName + ":samples"); srel != nil {
		for i := 0; i < srel.Len(); i++ {
			row := srel.Row(i)
			g := int(row[0])
			perGroup[g] = append(perGroup[g], append([]relation.Value(nil), row[1:]...))
		}
	}
	splitters := make([][][]relation.Value, groups)
	for g := range perGroup {
		ks := perGroup[g]
		sort.Slice(ks, func(a, b int) bool { return LexLess(ks[a], ks[b]) })
		var sp [][]relation.Value
		if len(ks) > 0 {
			for i := 1; i < fan; i++ {
				idx := i * len(ks) / fan
				if idx >= len(ks) {
					idx = len(ks) - 1
				}
				sp = append(sp, ks[idx])
			}
		}
		splitters[g] = sp
	}
	c.DeleteAll(outName + ":samples")
	subSize := (groupSize + fan - 1) / fan
	c.Round("fansort:partition", func(s *mpc.Server, out *mpc.Out) {
		frag := s.Rel(name)
		if frag == nil || frag.Len() == 0 {
			return
		}
		st := out.Open(outName, frag.Attrs()...)
		cols := keyCols(frag, keyAttrs)
		grp := s.ID() / groupSize
		base := grp * groupSize
		end := base + groupSize
		if end > c.P() {
			end = c.P() // partial last group
		}
		maxSub := (end - 1 - base) / subSize
		for i := 0; i < frag.Len(); i++ {
			row := frag.Row(i)
			sub := IntervalOf(keyOf(row, cols), splitters[grp])
			if sub > maxSub {
				// A partial group has fewer subgroups than fan; the
				// largest key intervals collapse into the last subgroup,
				// preserving global order.
				sub = maxSub
			}
			// Route round-robin within the subgroup to keep loads
			// balanced; deeper levels refine the order.
			lo := base + sub*subSize
			hi := lo + subSize
			if hi > end {
				hi = end
			}
			st.SendRow(lo+i%(hi-lo), row)
		}
	})
}

// VerifySorted checks that the distributed relation outName is globally
// sorted by keyAttrs: each fragment is locally sorted and fragment key
// ranges are non-overlapping in server order. It returns an error
// describing the first violation.
func VerifySorted(c *mpc.Cluster, outName string, keyAttrs []string) error {
	var prev []relation.Value
	for i := 0; i < c.P(); i++ {
		frag := c.Server(i).Rel(outName)
		if frag == nil || frag.Len() == 0 {
			continue
		}
		cols := keyCols(frag, keyAttrs)
		for j := 0; j < frag.Len(); j++ {
			k := keyOf(frag.Row(j), cols)
			if prev != nil && LexLess(k, prev) {
				return fmt.Errorf("sortmpc: server %d row %d key %v < previous max %v", i, j, k, prev)
			}
			prev = k
		}
	}
	return nil
}

// FragmentBounds returns, for each server, the (first, last) composite
// keys of its fragment of outName, or nil for empty fragments. Callers
// use it to detect values crossing server boundaries (slide 31's
// Cartesian-product fix-up in the parallel sort join).
func FragmentBounds(c *mpc.Cluster, outName string, keyAttrs []string) [][2][]relation.Value {
	out := make([][2][]relation.Value, c.P())
	for i := 0; i < c.P(); i++ {
		frag := c.Server(i).Rel(outName)
		if frag == nil || frag.Len() == 0 {
			continue
		}
		cols := keyCols(frag, keyAttrs)
		out[i] = [2][]relation.Value{
			append([]relation.Value(nil), keyOf(frag.Row(0), cols)...),
			append([]relation.Value(nil), keyOf(frag.Row(frag.Len()-1), cols)...),
		}
	}
	return out
}
