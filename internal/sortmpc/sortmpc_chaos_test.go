package sortmpc

import (
	"testing"

	"mpcquery/internal/mpc"
	"mpcquery/internal/testkit"
)

// Chaos-differential tests: PSRS under seeded fault schedules. Sorting
// is the strictest output contract in the repo — exact sequence
// equality, not bag equality — so any fragment a crash silently lost or
// an attempt delivered twice would surface as a misordered or
// wrong-length sequence.

func TestPSRSChaos(t *testing.T) {
	keys := []string{"k", "uid"}
	testkit.SweepChaos(t, testkit.Config{}, func(t *testing.T, p int, seed int64, skew testkit.Skew, spec string) {
		rel := genSortInput(skew, 160, seed)
		want := testkit.OracleSort(rel, keys...)

		clean := mpc.NewCluster(p, seed)
		clean.ScatterRoundRobin(rel)
		PSRS(clean, "R", keys, "out")

		c := testkit.NewChaosCluster(p, seed, spec)
		c.ScatterRoundRobin(rel)
		PSRS(c, "R", keys, "out")
		testkit.AssertRecovered(t, c)
		testkit.AssertSameLRC(t, clean, c)
		if err := VerifySorted(c, "out", keys); err != nil {
			t.Fatalf("VerifySorted: %v", err)
		}
		assertExactOrder(t, gatherInServerOrder(c, "out", keys), want)
	})
}

// TestFanLimitedSortChaos covers the multi-level variant: 2·⌈log_fan p⌉
// dependent rounds, the longest recovery chain in the package. Cluster
// sizes are powers of the fan, matching the diff suite: only there does
// the level recursion assign contiguous key ranges to consecutive
// server ids, which the exact-order assertion relies on (independent of
// fault injection).
func TestFanLimitedSortChaos(t *testing.T) {
	keys := []string{"k", "uid"}
	testkit.SweepChaos(t, testkit.Config{Ps: []int{2, 4}}, func(t *testing.T, p int, seed int64, skew testkit.Skew, spec string) {
		rel := genSortInput(skew, 160, seed)
		want := testkit.OracleSort(rel, keys...)

		clean := mpc.NewCluster(p, seed)
		clean.ScatterRoundRobin(rel)
		FanLimitedSort(clean, "R", keys, "out", 2)

		c := testkit.NewChaosCluster(p, seed, spec)
		c.ScatterRoundRobin(rel)
		FanLimitedSort(c, "R", keys, "out", 2)
		testkit.AssertRecovered(t, c)
		testkit.AssertSameLRC(t, clean, c)
		assertExactOrder(t, gatherInServerOrder(c, "out", keys), want)
	})
}
