package sortmpc

import (
	"testing"

	"mpcquery/internal/mpc"
	"mpcquery/internal/relation"
	"mpcquery/internal/workload"
)

func scatterUniform(t *testing.T, p, n int, seed int64) (*mpc.Cluster, *relation.Relation) {
	t.Helper()
	c := mpc.NewCluster(p, seed)
	r := workload.Uniform("R", []string{"k", "v"}, n, n*4, seed)
	c.ScatterRoundRobin(r)
	return c, r
}

func TestIntervalOf(t *testing.T) {
	sp := [][]relation.Value{{10}, {20}, {30}}
	cases := []struct {
		k    relation.Value
		want int
	}{
		{5, 0}, {10, 0}, {11, 1}, {20, 1}, {21, 2}, {30, 2}, {31, 3}, {1000, 3},
	}
	for _, tc := range cases {
		if got := IntervalOf([]relation.Value{tc.k}, sp); got != tc.want {
			t.Errorf("IntervalOf(%d) = %d, want %d", tc.k, got, tc.want)
		}
	}
	if IntervalOf([]relation.Value{5}, nil) != 0 {
		t.Error("no splitters should map to 0")
	}
	// Composite keys compare lexicographically.
	csp := [][]relation.Value{{10, 5}, {10, 9}}
	if got := IntervalOf([]relation.Value{10, 5}, csp); got != 0 {
		t.Errorf("composite (10,5) interval = %d, want 0", got)
	}
	if got := IntervalOf([]relation.Value{10, 7}, csp); got != 1 {
		t.Errorf("composite (10,7) interval = %d, want 1", got)
	}
	if got := IntervalOf([]relation.Value{11, 0}, csp); got != 2 {
		t.Errorf("composite (11,0) interval = %d, want 2", got)
	}
}

func TestLexLess(t *testing.T) {
	if !LexLess([]relation.Value{1, 5}, []relation.Value{2, 0}) {
		t.Error("(1,5) < (2,0)")
	}
	if !LexLess([]relation.Value{1, 5}, []relation.Value{1, 6}) {
		t.Error("(1,5) < (1,6)")
	}
	if LexLess([]relation.Value{1, 5}, []relation.Value{1, 5}) {
		t.Error("(1,5) not < itself")
	}
}

// TestPSRSCompositeKeySplitsHeavyValue: sorting by (k, uid) lets a
// heavily duplicated k value spread over multiple servers while the
// partition stays balanced — the property the parallel sort join
// exploits (slide 31).
func TestPSRSCompositeKeySplitsHeavyValue(t *testing.T) {
	const n, p = 4000, 8
	c := mpc.NewCluster(p, 1)
	r := relation.New("R", "k", "uid")
	for i := 0; i < n; i++ {
		r.Append(7, relation.Value(i)) // one single heavy value
	}
	c.ScatterRoundRobin(r)
	PSRS(c, "R", []string{"k", "uid"}, "sorted")
	if err := VerifySorted(c, "sorted", []string{"k", "uid"}); err != nil {
		t.Fatal(err)
	}
	if !c.Gather("sorted").EqualAsSets(r) {
		t.Fatal("lost tuples")
	}
	// The heavy value must be split: no server may hold more than half
	// the input (single-key PSRS would put all of it on one server).
	if got := c.MaxFragLen("sorted"); got > n/2 {
		t.Fatalf("heavy value not split: max fragment %d of %d", got, n)
	}
	bounds := FragmentBounds(c, "sorted", []string{"k", "uid"})
	nonEmpty := 0
	for _, b := range bounds {
		if b[0] != nil {
			nonEmpty++
		}
	}
	if nonEmpty < 2 {
		t.Fatalf("heavy value occupies %d servers, want ≥ 2", nonEmpty)
	}
}

func TestPSRSSortsCorrectly(t *testing.T) {
	c, r := scatterUniform(t, 8, 2000, 3)
	res := PSRS(c, "R", []string{"k"}, "sorted")
	if err := VerifySorted(c, "sorted", []string{"k"}); err != nil {
		t.Fatal(err)
	}
	got := c.Gather("sorted")
	if !got.EqualAsSets(r) {
		t.Fatal("sort lost or duplicated tuples")
	}
	if got.Len() != r.Len() {
		t.Fatalf("bag size %d != %d", got.Len(), r.Len())
	}
	if res.Rounds != 2 {
		t.Fatalf("PSRS rounds = %d, want 2", res.Rounds)
	}
	if len(res.Splitters) != 7 {
		t.Fatalf("splitters = %d, want p-1", len(res.Splitters))
	}
}

func TestPSRSLoadNearIdeal(t *testing.T) {
	// Slide 102: for p << N^{1/3}, PSRS load is O(N/p). Check the
	// partition round's max load is within 3x of N/p.
	const n, p = 8000, 8
	c, _ := scatterUniform(t, p, n, 5)
	PSRS(c, "R", []string{"k"}, "sorted")
	load := c.Metrics().MaxLoadOfRound("sort:partition")
	ideal := int64(n / p)
	if load > 3*ideal {
		t.Fatalf("partition load %d > 3× ideal %d", load, ideal)
	}
}

func TestPSRSRandomSample(t *testing.T) {
	c, r := scatterUniform(t, 8, 2000, 7)
	res := PSRSRandomSample(c, "R", []string{"k"}, "sorted", 32)
	if err := VerifySorted(c, "sorted", []string{"k"}); err != nil {
		t.Fatal(err)
	}
	if !c.Gather("sorted").EqualAsSets(r) {
		t.Fatal("random-sample sort lost tuples")
	}
	if res.Rounds != 2 {
		t.Fatalf("rounds = %d", res.Rounds)
	}
}

func TestPSRSWithDuplicateKeys(t *testing.T) {
	c := mpc.NewCluster(4, 1)
	r := workload.UniformDegree("R", "k", "v", 1000, 50) // heavy duplication
	c.ScatterRoundRobin(r)
	PSRS(c, "R", []string{"k"}, "sorted")
	if err := VerifySorted(c, "sorted", []string{"k"}); err != nil {
		t.Fatal(err)
	}
	if !c.Gather("sorted").EqualAsSets(r) {
		t.Fatal("duplicate-key sort lost tuples")
	}
}

func TestPSRSEmptyAndTiny(t *testing.T) {
	c := mpc.NewCluster(4, 1)
	c.ScatterRoundRobin(relation.New("R", "k", "v"))
	PSRS(c, "R", []string{"k"}, "sorted")
	// Nothing to verify beyond not panicking; also a 1-tuple input:
	c2 := mpc.NewCluster(4, 1)
	one := relation.FromRows("R", []string{"k", "v"}, [][]relation.Value{{5, 0}})
	c2.ScatterRoundRobin(one)
	PSRS(c2, "R", []string{"k"}, "sorted")
	if err := VerifySorted(c2, "sorted", []string{"k"}); err != nil {
		t.Fatal(err)
	}
	if c2.TotalLen("sorted") != 1 {
		t.Fatal("tuple lost")
	}
}

func TestPSRSSingleServer(t *testing.T) {
	c := mpc.NewCluster(1, 1)
	r := workload.Uniform("R", []string{"k", "v"}, 100, 1000, 2)
	c.ScatterRoundRobin(r)
	PSRS(c, "R", []string{"k"}, "sorted")
	if err := VerifySorted(c, "sorted", []string{"k"}); err != nil {
		t.Fatal(err)
	}
	if !c.Gather("sorted").EqualAsSets(r) {
		t.Fatal("p=1 sort lost tuples")
	}
}

func TestFanLimitedSort(t *testing.T) {
	for _, fan := range []int{2, 3, 8} {
		c, r := scatterUniform(t, 8, 4000, int64(fan))
		res := FanLimitedSort(c, "R", []string{"k"}, "sorted", fan)
		if err := VerifySorted(c, "sorted", []string{"k"}); err != nil {
			t.Fatalf("fan=%d: %v", fan, err)
		}
		if !c.Gather("sorted").EqualAsSets(r) {
			t.Fatalf("fan=%d lost tuples", fan)
		}
		// Rounds grow as fan shrinks: fan=8 covers p=8 in one level
		// (2 rounds), fan=2 needs 3 levels (6 rounds).
		wantLevels := map[int]int{2: 3, 3: 2, 8: 1}[fan]
		if res.Rounds != 2*wantLevels {
			t.Fatalf("fan=%d rounds = %d, want %d", fan, res.Rounds, 2*wantLevels)
		}
	}
}

func TestFanLimitedSortRoundsTradeoff(t *testing.T) {
	// Smaller fan ⇒ more rounds (the log_L N trade-off).
	c2, _ := scatterUniform(t, 16, 2000, 1)
	r2 := FanLimitedSort(c2, "R", []string{"k"}, "sorted", 2)
	c4, _ := scatterUniform(t, 16, 2000, 1)
	r4 := FanLimitedSort(c4, "R", []string{"k"}, "sorted", 4)
	if r2.Rounds <= r4.Rounds {
		t.Fatalf("fan 2 rounds %d should exceed fan 4 rounds %d", r2.Rounds, r4.Rounds)
	}
}

func TestFanLimitedSortPanicsOnBadFan(t *testing.T) {
	c, _ := scatterUniform(t, 4, 100, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FanLimitedSort(c, "R", []string{"k"}, "sorted", 1)
}

func TestVerifySortedDetectsViolation(t *testing.T) {
	c := mpc.NewCluster(2, 1)
	// Server 0 gets large keys, server 1 small: out of order.
	c.Server(0).Put(relation.FromRows("bad", []string{"k"}, [][]relation.Value{{100}}))
	c.Server(1).Put(relation.FromRows("bad", []string{"k"}, [][]relation.Value{{1}}))
	if err := VerifySorted(c, "bad", []string{"k"}); err == nil {
		t.Fatal("expected violation")
	}
	// Locally unsorted fragment.
	c2 := mpc.NewCluster(1, 1)
	c2.Server(0).Put(relation.FromRows("bad", []string{"k"}, [][]relation.Value{{5}, {3}}))
	if err := VerifySorted(c2, "bad", []string{"k"}); err == nil {
		t.Fatal("expected local violation")
	}
}
