package sortmpc

import (
	"testing"

	"mpcquery/internal/mpc"
	"mpcquery/internal/testkit"
)

// Cross-backend differential tests: PSRS's sample exchange (tiny
// broadcast fragments) and range partition (bulk skewed fragments) must
// be indistinguishable between the in-process engine and the TCP
// transport — delivery order matters here, since the concatenated
// output is compared as a sequence by the fault-free diff tests.

func TestPSRSBackendDiff(t *testing.T) {
	testkit.SweepBackends(t, testkit.Config{}, func(t *testing.T, c *mpc.Cluster, p int, seed int64, skew testkit.Skew) {
		rel := genSortInput(skew, 160, seed)
		c.ScatterRoundRobin(rel)
		PSRS(c, "R", []string{"k", "uid"}, "out")
		if err := VerifySorted(c, "out", []string{"k", "uid"}); err != nil {
			t.Fatalf("VerifySorted: %v", err)
		}
	})
}

func TestFanLimitedSortBackendDiff(t *testing.T) {
	testkit.SweepBackends(t, testkit.Config{}, func(t *testing.T, c *mpc.Cluster, p int, seed int64, skew testkit.Skew) {
		rel := genSortInput(skew, 160, seed)
		c.ScatterRoundRobin(rel)
		FanLimitedSort(c, "R", []string{"k", "uid"}, "out", 2)
		if err := VerifySorted(c, "out", []string{"k", "uid"}); err != nil {
			t.Fatalf("VerifySorted: %v", err)
		}
	})
}
