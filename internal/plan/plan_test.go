package plan

import (
	"math/rand"
	"strings"
	"testing"

	"mpcquery/internal/core"
	"mpcquery/internal/hypergraph"
	"mpcquery/internal/relation"
)

// genRel builds a deterministic random relation; identical arguments
// yield identical contents.
func genRel(name string, attrs []string, n int, domain, seed int64) *relation.Relation {
	rng := rand.New(rand.NewSource(seed))
	r := relation.New(name, attrs...)
	row := make([]relation.Value, len(attrs))
	for i := 0; i < n; i++ {
		for j := range row {
			row[j] = relation.Value(rng.Int63n(domain))
		}
		r.Append(row...)
	}
	return r
}

func triangleInstance(seed int64) map[string]*relation.Relation {
	return map[string]*relation.Relation{
		"R": genRel("R", []string{"x", "y"}, 90, 30, seed),
		"S": genRel("S", []string{"y", "z"}, 90, 30, seed+1),
		"T": genRel("T", []string{"z", "x"}, 90, 30, seed+2),
	}
}

func TestTriangleCandidates(t *testing.T) {
	q := hypergraph.Triangle()
	pl, err := For(q, triangleInstance(7), 8, Options{})
	if err != nil {
		t.Fatal(err)
	}
	applicable := 0
	byAlg := map[string]Candidate{}
	for _, c := range pl.Candidates {
		byAlg[c.Alg] = c
		if c.Applicable {
			applicable++
			if c.Est.R < 1 {
				t.Errorf("%s: applicable candidate predicts %d rounds", c.Alg, c.Est.R)
			}
			if c.Est.L <= 0 || c.Est.C <= 0 {
				t.Errorf("%s: degenerate estimate %v", c.Alg, c.Est)
			}
		}
	}
	if applicable < 3 {
		t.Fatalf("triangle should have ≥ 3 applicable candidates, got %d\n%s", applicable, pl.Explain())
	}
	for _, alg := range []string{"hypercube", "skewhc", "hl-triangle", "bigjoin", "binaryplan"} {
		if !byAlg[alg].Applicable {
			t.Errorf("%s should apply to the triangle: %s", alg, byAlg[alg].Rejection)
		}
	}
	// The triangle is cyclic: GYM and the two-way strategies must be out.
	for _, alg := range []string{"gym", "gym-opt", "hashjoin", "broadcast"} {
		if byAlg[alg].Applicable {
			t.Errorf("%s should not apply to the triangle", alg)
		}
	}
	if !strings.Contains(byAlg["gym"].Rejection, "cyclic") {
		t.Errorf("gym rejection should mention cyclicity, got %q", byAlg["gym"].Rejection)
	}
	if pl.Best() == nil {
		t.Fatal("no chosen plan")
	}
	// Every applicable loser must carry a rejection reason.
	for i, c := range pl.Candidates {
		if i != pl.Chosen && c.Applicable && c.Rejection == "" {
			t.Errorf("loser %s has no rejection reason", c.Alg)
		}
	}
}

func TestExplainDeterministic(t *testing.T) {
	q := hypergraph.Triangle()
	render := func() string {
		pl, err := For(q, triangleInstance(11), 8, Options{MaxRounds: 4})
		if err != nil {
			t.Fatal(err)
		}
		return pl.Explain()
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("EXPLAIN is not byte-deterministic:\n--- first\n%s\n--- second\n%s", a, b)
	}
	for _, want := range []string{"query triangle", "candidates:", "chosen:", "round budget 4", "L≈", "r=", "C≈"} {
		if !strings.Contains(a, want) {
			t.Errorf("EXPLAIN output missing %q:\n%s", want, a)
		}
	}
}

func TestSingleAtomQuery(t *testing.T) {
	q, err := hypergraph.Parse("single", "R(x,y)")
	if err != nil {
		t.Fatal(err)
	}
	rels := map[string]*relation.Relation{"R": genRel("R", []string{"x", "y"}, 40, 100, 3)}
	pl, err := For(q, rels, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	best := pl.Best()
	if best.Est.R != 0 || best.Est.L != 0 {
		t.Errorf("single atom should plan to zero communication, chose %s with %s", best.Alg, best.Est)
	}
	res, err := pl.Execute(core.NewEngine(4, 3), rels)
	if err != nil {
		t.Fatal(err)
	}
	want := rels["R"].Clone()
	want.Dedup()
	if !res.Exec.Output.EqualAsSets(want) {
		t.Errorf("single-atom output should be the relation itself")
	}
}

func TestCartesianProduct(t *testing.T) {
	q, err := hypergraph.Parse("cross", "R(x,y), S(z,w)")
	if err != nil {
		t.Fatal(err)
	}
	rels := map[string]*relation.Relation{
		"R": relation.FromRows("R", []string{"x", "y"}, [][]relation.Value{{1, 2}, {3, 4}}),
		"S": relation.FromRows("S", []string{"z", "w"}, [][]relation.Value{{5, 6}, {7, 8}, {9, 10}}),
	}
	pl, err := For(q, rels, 4, Options{})
	if err != nil {
		t.Fatalf("a Cartesian product should still be plannable (HyperCube handles it): %v", err)
	}
	byAlg := map[string]Candidate{}
	for _, c := range pl.Candidates {
		byAlg[c.Alg] = c
	}
	// GYO calls the product acyclic, but the tree is disconnected; the
	// semijoin-based strategies must refuse rather than mis-evaluate.
	for _, alg := range []string{"gym", "gym-opt", "binaryplan"} {
		if byAlg[alg].Applicable {
			t.Errorf("%s must reject the Cartesian product", alg)
		}
	}
	if !byAlg["hypercube"].Applicable {
		t.Fatalf("hypercube should handle the Cartesian product: %s", byAlg["hypercube"].Rejection)
	}
	res, err := pl.Execute(core.NewEngine(4, 1), rels)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Exec.Output.Len(); got != 6 {
		t.Errorf("cross product of 2×3 rows: got %d output tuples, want 6", got)
	}
}

func TestAcyclicVsCyclic(t *testing.T) {
	path := hypergraph.Path(3)
	rels := map[string]*relation.Relation{}
	for i, a := range path.Atoms {
		rels[a.Name] = genRel(a.Name, a.Vars, 60, 20, int64(i+1))
	}
	pl, err := For(path, rels, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, c := range pl.Candidates {
		if c.Applicable {
			seen[c.Alg] = true
		}
	}
	for _, alg := range []string{"gym", "gym-opt", "binaryplan", "hypercube", "bigjoin"} {
		if !seen[alg] {
			t.Errorf("%s should apply to the acyclic path query", alg)
		}
	}
	if seen["hl-triangle"] {
		t.Error("hl-triangle must only apply to the triangle")
	}
}

func TestRoundBudget(t *testing.T) {
	q := hypergraph.Triangle()
	pl, err := For(q, triangleInstance(5), 8, Options{MaxRounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if best := pl.Best(); best.Est.R > 1 {
		t.Fatalf("round budget 1 violated: chose %s with r=%d", best.Alg, best.Est.R)
	}
	budgetRejected := false
	for _, c := range pl.Candidates {
		if c.Applicable && strings.Contains(c.Rejection, "round budget") {
			budgetRejected = true
		}
	}
	if !budgetRejected {
		t.Error("expected at least one candidate rejected by the round budget")
	}
}

func TestCollectStatsHeavyHitter(t *testing.T) {
	q := hypergraph.TwoWayJoin()
	r := relation.New("R", "x", "y")
	for i := 0; i < 100; i++ {
		r.Append(relation.Value(i), 7) // y = 7 always: one heavy value
	}
	s := genRel("S", []string{"y", "z"}, 100, 50, 9)
	st, err := CollectStats(q, map[string]*relation.Relation{"R": r, "S": s}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if st.HeavyVars["y"] == 0 {
		t.Error("planted heavy hitter on y not detected")
	}
	if st.MaxDeg["R"]["y"] != 100 {
		t.Errorf("dmax(R.y) = %d, want 100", st.MaxDeg["R"]["y"])
	}
	if st.Distinct["R"]["x"] != 100 {
		t.Errorf("V(R.x) = %d, want 100", st.Distinct["R"]["x"])
	}
	if !st.Skewed() {
		t.Error("Skewed() should report true")
	}
}

func TestAggregateOptionAddsRound(t *testing.T) {
	q := hypergraph.TwoWayJoin()
	rels := map[string]*relation.Relation{
		"R": genRel("R", []string{"x", "y"}, 80, 25, 1),
		"S": genRel("S", []string{"y", "z"}, 80, 25, 2),
	}
	spec := &core.AggregateSpec{GroupBy: []string{"x"}, Fn: relation.Count, OutAttr: "n"}
	base, err := For(q, rels, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	agg, err := For(q, rels, 4, Options{Aggregate: spec})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range agg.Candidates {
		if !c.Applicable {
			continue
		}
		// Same algorithm in the base plan must predict exactly one round less.
		for _, b := range base.Candidates {
			if b.Alg == c.Alg && b.Applicable && c.Est.R != b.Est.R+1 {
				t.Errorf("%s: aggregate plan predicts r=%d, base r=%d (want +1)", c.Alg, c.Est.R, b.Est.R)
			}
		}
		_ = i
	}
	res, err := agg.Execute(core.NewEngine(4, 1), rels)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Exec.Output.Attrs(); len(got) != 2 || got[0] != "x" || got[1] != "n" {
		t.Errorf("aggregate output schema = %v, want [x n]", got)
	}
}

func TestPredictionRatioReported(t *testing.T) {
	q := hypergraph.Triangle()
	rels := triangleInstance(13)
	pl, err := For(q, rels, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := pl.Execute(core.NewEngine(4, 13), rels)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeasuredL <= 0 {
		t.Fatalf("expected metered load > 0, got %d", res.MeasuredL)
	}
	if res.Ratio <= 0 {
		t.Fatalf("prediction ratio should be positive, got %g", res.Ratio)
	}
	if !strings.Contains(res.String(), "ratio") {
		t.Errorf("Result.String should mention the ratio: %s", res.String())
	}
}

// TestCapacityOptions pins the heterogeneous planning path: candidates
// are costed against the profile's effective parallelism, the EXPLAIN
// listing names the profile, and Execute routes through the
// capacity-aware executor with the answer unchanged.
func TestCapacityOptions(t *testing.T) {
	q := hypergraph.Triangle()
	rels := triangleInstance(7)
	caps := []float64{4, 1, 1, 1, 1, 1, 1, 1} // effective p ≈ 2.75
	uniform, err := For(q, rels, 8, Options{})
	if err != nil {
		t.Fatal(err)
	}
	het, err := For(q, rels, 8, Options{Capacities: caps})
	if err != nil {
		t.Fatal(err)
	}
	// Deflating p to 2 must raise per-server load predictions.
	ub, hb := uniform.Best(), het.Best()
	if hb.Est.L <= ub.Est.L {
		t.Errorf("het plan predicts L %.4g, not above uniform %.4g at full p", hb.Est.L, ub.Est.L)
	}
	if !strings.Contains(het.Explain(), "effective p") {
		t.Errorf("EXPLAIN does not name the capacity profile:\n%s", het.Explain())
	}
	if strings.Contains(uniform.Explain(), "capacities") {
		t.Errorf("uniform EXPLAIN mentions capacities:\n%s", uniform.Explain())
	}

	eng := core.NewEngine(8, 7)
	res, err := het.Execute(eng, rels)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Capacities != nil {
		t.Error("Execute mutated the caller's engine")
	}
	want := core.Reference(q, rels)
	got := res.Exec.Output
	if got.Len() != want.Len() {
		t.Errorf("capacity-aware execution: %d rows, reference %d", got.Len(), want.Len())
	}
}
