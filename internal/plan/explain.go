package plan

import (
	"fmt"
	"strings"

	"mpcquery/internal/cost"
)

// Explain renders the plan as the EXPLAIN listing: the query, the
// collected statistics, and one line per candidate — predicted
// (L, r, C) for applicable strategies, the rejection reason for every
// loser, and the chosen plan marked with '*'. The output is
// deterministic: the same query, relations, p, and options produce
// byte-identical text (asserted by TestExplainDeterministic).
func (pl *Plan) Explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "query %s  (p=%d", pl.Stats.Query.Name, pl.Stats.P)
	if pl.Opts.MaxRounds > 0 {
		fmt.Fprintf(&b, ", round budget %d", pl.Opts.MaxRounds)
	}
	if pl.Opts.Aggregate != nil {
		fmt.Fprintf(&b, ", group-by %s", strings.Join(pl.Opts.Aggregate.GroupBy, ","))
	}
	b.WriteString(")\n")
	if caps := pl.Opts.Capacities; len(caps) > 0 {
		fmt.Fprintf(&b, "  capacities %v, effective p %.2f\n", caps, cost.EffectiveParallelism(caps))
	}
	fmt.Fprintf(&b, "  %s\n", pl.Stats.Query)
	for _, line := range strings.Split(strings.TrimRight(pl.Stats.String(), "\n"), "\n") {
		fmt.Fprintf(&b, "  %s\n", line)
	}
	b.WriteString("candidates:\n")
	wroteInapplicable := false
	for i, c := range pl.Candidates {
		if !c.Applicable && !wroteInapplicable {
			b.WriteString("not applicable:\n")
			wroteInapplicable = true
		}
		mark := "  "
		if i == pl.Chosen {
			mark = "* "
		}
		if c.Applicable {
			fmt.Fprintf(&b, "%s%-12s %s", mark, c.Alg, c.Est)
			if c.Rejection != "" {
				fmt.Fprintf(&b, "  -- %s", c.Rejection)
			}
		} else {
			fmt.Fprintf(&b, "%s%-12s %s", mark, c.Alg, c.Rejection)
		}
		b.WriteByte('\n')
	}
	if best := pl.Best(); best != nil {
		fmt.Fprintf(&b, "chosen: %s — %s\n", best.Alg, best.Doc)
	} else {
		b.WriteString("chosen: none\n")
	}
	return b.String()
}
