package plan

import (
	"fmt"

	"mpcquery/internal/core"
	"mpcquery/internal/relation"
)

// Result is a self-validating execution: the metered costs of the
// chosen plan next to what the planner predicted for it. Ratio is the
// cost model's report card — it should hover near 1; the planner
// harness (internal/testkit) asserts the chosen plan's measured load is
// never worse than 2× the best measured candidate.
type Result struct {
	Plan *Plan
	Exec *core.Execution
	// PredictedL is the chosen candidate's predicted per-round load.
	PredictedL float64
	// MeasuredL is the metered max per-server per-round load.
	MeasuredL int64
	// Ratio is PredictedL / max(MeasuredL, 1).
	Ratio float64
}

func (r *Result) String() string {
	return fmt.Sprintf("%s: predicted L≈%.4g, measured L=%d (ratio %.2f), r=%d, C=%d",
		r.Exec.Algorithm, r.PredictedL, r.MeasuredL, r.Ratio, r.Exec.Rounds, r.Exec.TotalComm)
}

// Execute runs the chosen plan on the engine and validates the
// prediction against the metered load. The relations must be the ones
// the statistics were collected from (keyed by atom name, columns
// positional to the atom's variables).
func (pl *Plan) Execute(e *core.Engine, rels map[string]*relation.Relation) (*Result, error) {
	best := pl.Best()
	if best == nil {
		return nil, fmt.Errorf("plan: no chosen candidate to execute")
	}
	req := core.Request{
		Query:     pl.Stats.Query,
		Relations: rels,
		Algorithm: core.Algorithm(best.Alg),
	}
	if len(pl.Opts.Capacities) > 0 {
		// Run on an engine copy carrying the profile so HyperCube plans
		// take the capacity-aware path; the caller's engine is untouched.
		het := *e
		het.Capacities = pl.Opts.Capacities
		e = &het
	}
	var exec *core.Execution
	var err error
	if pl.Opts.Aggregate != nil {
		exec, err = e.ExecuteAggregate(req, *pl.Opts.Aggregate)
	} else {
		exec, err = e.Execute(req)
	}
	if err != nil {
		return nil, err
	}
	measured := exec.MaxLoad
	den := measured
	if den < 1 {
		den = 1
	}
	return &Result{
		Plan:       pl,
		Exec:       exec,
		PredictedL: best.Est.L,
		MeasuredL:  measured,
		Ratio:      best.Est.L / float64(den),
	}, nil
}
