// Package plan is the cost-based MPC query planner: it collects input
// statistics from the actual relations, asks every algorithm package
// for its cost prediction (each exports Plannables() descriptors built
// on internal/cost), and picks the plan with the smallest predicted
// per-round load L subject to an optional round budget — the
// optimization objective of the MPC model itself (slides 12–15).
//
// The planner is self-validating: Execute runs the chosen plan through
// core.Engine and reports the ratio of predicted to metered load, so
// every execution doubles as a check of the cost model. Explain renders
// the full candidate table — predicted (L, r, C) for every applicable
// strategy and the rejection reason for every loser — deterministically
// (same query, statistics, and options produce byte-identical output),
// which is what `mpcrun -explain` prints.
package plan

import (
	"fmt"
	"sort"

	"mpcquery/internal/aggregate"
	"mpcquery/internal/bigjoin"
	"mpcquery/internal/core"
	"mpcquery/internal/cost"
	"mpcquery/internal/fractional"
	"mpcquery/internal/hypercube"
	"mpcquery/internal/hypergraph"
	"mpcquery/internal/join2"
	"mpcquery/internal/matmul"
	"mpcquery/internal/relation"
	"mpcquery/internal/sortmpc"
	"mpcquery/internal/yannakakis"
)

// Registry returns every Plannable descriptor the algorithm packages
// export, in a fixed registration order (the EXPLAIN order before cost
// sorting).
func Registry() []cost.Plannable {
	var all []cost.Plannable
	all = append(all, join2.Plannables()...)
	all = append(all, hypercube.Plannables()...)
	all = append(all, yannakakis.Plannables()...)
	all = append(all, bigjoin.Plannables()...)
	all = append(all, aggregate.Plannables()...)
	all = append(all, sortmpc.Plannables()...)
	all = append(all, matmul.Plannables()...)
	return all
}

// CollectStats scans the relations once and builds the planner's input
// statistics: cardinalities, per-column distinct counts and maximum
// degrees, heavy-hitter counts (threshold max|S_j|/p, the slide-29
// convention), the AGM bound and the System-R output estimate.
// Relations are keyed by atom name with columns positional to the
// atom's variables, exactly as core.Request expects them.
func CollectStats(q hypergraph.Query, rels map[string]*relation.Relation, p int) (*cost.QueryStats, error) {
	if p < 1 {
		return nil, fmt.Errorf("plan: need p ≥ 1, got %d", p)
	}
	if len(q.Atoms) == 0 {
		return nil, fmt.Errorf("plan: query %s has no atoms", q.Name)
	}
	st := &cost.QueryStats{
		Query:     q,
		P:         p,
		Sizes:     map[string]int64{},
		Distinct:  map[string]map[string]int{},
		MaxDeg:    map[string]map[string]int{},
		HeavyVars: map[string]int{},
	}
	var maxSize int64 = 1
	for _, a := range q.Atoms {
		r := rels[a.Name]
		if r == nil {
			return nil, fmt.Errorf("plan: missing relation for atom %s", a.Name)
		}
		if r.Arity() != len(a.Vars) {
			return nil, fmt.Errorf("plan: relation %s has arity %d, atom wants %d", a.Name, r.Arity(), len(a.Vars))
		}
		n := int64(r.Len())
		if n < 1 {
			n = 1
		}
		st.Sizes[a.Name] = n
		st.IN += n
		if n > maxSize {
			maxSize = n
		}
	}
	st.HeavyThreshold = int(maxSize / int64(p))
	if st.HeavyThreshold < 1 {
		st.HeavyThreshold = 1
	}
	for _, a := range q.Atoms {
		r := rels[a.Name]
		dist := map[string]int{}
		deg := map[string]int{}
		for ci, v := range a.Vars {
			freq := map[relation.Value]int{}
			for i := 0; i < r.Len(); i++ {
				freq[r.Row(i)[ci]]++
			}
			dmax, heavy := 0, 0
			for _, f := range freq {
				if f > dmax {
					dmax = f
				}
				if f > st.HeavyThreshold {
					heavy++
				}
			}
			d := len(freq)
			if d < 1 {
				d = 1
			}
			if dmax < 1 {
				dmax = 1
			}
			dist[v] = d
			deg[v] = dmax
			if heavy > st.HeavyVars[v] {
				st.HeavyVars[v] = heavy
			}
		}
		st.Distinct[a.Name] = dist
		st.MaxDeg[a.Name] = deg
	}
	agm, err := fractional.AGMBound(q, st.Sizes)
	if err != nil {
		return nil, err
	}
	st.OutAGM = agm
	// The heavy-aware chain estimate equals the System-R EstimateOut on
	// skew-free inputs and only grows when correlated heavy hitters
	// would make the independence assumption collapse.
	st.OutEst = cost.ChainOut(st)
	return st, nil
}

// Options configures plan selection.
type Options struct {
	// MaxRounds rejects candidates predicting more rounds; 0 = no budget.
	MaxRounds int
	// Aggregate, when set, appends a combiner-style group-by round to
	// every candidate's estimate (the plan then executes through
	// core.ExecuteAggregate).
	Aggregate *core.AggregateSpec
	// Capacities, when non-empty, declares a heterogeneous per-server
	// capacity profile (len must equal the cluster's p, entries > 0).
	// Candidates are then costed against the profile's effective
	// parallelism Σc/max(c) — the honest p of an unequal cluster, since
	// per-round time is governed by the slowest machine's normalized
	// load — and Execute runs HyperCube plans through the
	// capacity-aware executor.
	Capacities []float64
}

// Candidate is one strategy's entry in the plan: its descriptor, its
// estimate when applicable, and why the planner did not choose it.
type Candidate struct {
	cost.Plannable
	// Est is the predicted cost; valid only when Applicable.
	Est cost.Estimate
	// Applicable records whether Applies accepted the query.
	Applicable bool
	// Rejection explains why this candidate lost (empty for the chosen
	// plan): the applicability error, the round budget, or how much
	// worse its predicted load is.
	Rejection string
}

// Plan is a costed, executable decision for one query instance.
type Plan struct {
	Stats *cost.QueryStats
	Opts  Options
	// Candidates holds every registry entry, sorted: applicable by
	// (L, r, C, name), then inapplicable executable strategies, then
	// primitives, both alphabetically.
	Candidates []Candidate
	// Chosen indexes the selected candidate in Candidates (-1 when no
	// strategy applies).
	Chosen int
}

// For collects statistics and chooses a plan in one call.
func For(q hypergraph.Query, rels map[string]*relation.Relation, p int, opts Options) (*Plan, error) {
	st, err := CollectStats(q, rels, p)
	if err != nil {
		return nil, err
	}
	return Choose(st, opts)
}

// Choose evaluates every registered strategy against the statistics and
// selects the applicable candidate with the minimum predicted load L
// among those within the round budget; ties break on fewer rounds, then
// less total communication, then name. The returned error is non-nil
// only when no candidate qualifies (the Plan still carries the full
// candidate table for EXPLAIN).
func Choose(st *cost.QueryStats, opts Options) (*Plan, error) {
	pl := &Plan{Stats: st, Opts: opts, Chosen: -1}
	// On a heterogeneous profile, cost candidates against the effective
	// parallelism Σc/max(c) instead of the machine count: per-round time
	// is the max capacity-normalized load, so an unequal cluster behaves
	// like a smaller uniform one. The plan keeps the real stats — only
	// prediction sees the deflated p.
	pst := st
	if len(opts.Capacities) > 0 {
		if ep := int(cost.EffectiveParallelism(opts.Capacities)); ep >= 1 && ep != st.P {
			deflated := *st
			deflated.P = ep
			pst = &deflated
		}
	}
	for _, pa := range Registry() {
		c := Candidate{Plannable: pa}
		if err := pa.Applies(pst); err != nil {
			c.Rejection = err.Error()
		} else if est, err := pa.Predict(pst); err != nil {
			c.Rejection = "prediction failed: " + err.Error()
		} else {
			c.Applicable = true
			c.Est = est
			if opts.Aggregate != nil {
				c.Est = addAggregateRound(pst, c.Est, opts.Aggregate)
			}
		}
		pl.Candidates = append(pl.Candidates, c)
	}
	sort.SliceStable(pl.Candidates, func(i, j int) bool {
		a, b := pl.Candidates[i], pl.Candidates[j]
		if a.Applicable != b.Applicable {
			return a.Applicable
		}
		if !a.Applicable {
			if a.Executable != b.Executable {
				return a.Executable
			}
			return a.Alg < b.Alg
		}
		if a.Est.L != b.Est.L {
			return a.Est.L < b.Est.L
		}
		if a.Est.R != b.Est.R {
			return a.Est.R < b.Est.R
		}
		if a.Est.C != b.Est.C {
			return a.Est.C < b.Est.C
		}
		return a.Alg < b.Alg
	})
	for i := range pl.Candidates {
		c := &pl.Candidates[i]
		if !c.Applicable {
			continue
		}
		if opts.MaxRounds > 0 && c.Est.R > opts.MaxRounds {
			c.Rejection = fmt.Sprintf("predicted r=%d exceeds round budget %d", c.Est.R, opts.MaxRounds)
			continue
		}
		if pl.Chosen < 0 {
			pl.Chosen = i
			continue
		}
		chosen := pl.Candidates[pl.Chosen].Est
		switch {
		case chosen.L <= 0:
			c.Rejection = "chosen plan predicts zero load"
		case c.Est.L > chosen.L:
			c.Rejection = fmt.Sprintf("predicted L %.2f× the chosen plan", c.Est.L/chosen.L)
		default:
			c.Rejection = "tied on L; loses the (r, C, name) tie-break"
		}
	}
	if pl.Chosen < 0 {
		return pl, fmt.Errorf("plan: no applicable strategy for %s within a budget of %d rounds", st.Query.Name, opts.MaxRounds)
	}
	return pl, nil
}

// addAggregateRound extends an estimate with the combiner group-by
// round: with local pre-aggregation each server ships at most its own
// group set, so the extra communication is min(OUT, p·groups) and the
// extra per-server load min(OUT/p, groups) (slides 87–90).
func addAggregateRound(st *cost.QueryStats, est cost.Estimate, spec *core.AggregateSpec) cost.Estimate {
	groups := aggregate.EstimateGroups(st, spec.GroupBy)
	p := float64(st.P)
	aggL := st.OutEst / p
	if groups < aggL {
		aggL = groups
	}
	aggC := st.OutEst
	if g := groups * p; g < aggC {
		aggC = g
	}
	est.R++
	if aggL > est.L {
		est.L = aggL
	}
	est.C += aggC
	if est.Detail != "" {
		est.Detail += "; "
	}
	est.Detail += fmt.Sprintf("+agg round, ≈%.4g groups", groups)
	return est
}

// Best returns the chosen candidate.
func (pl *Plan) Best() *Candidate {
	if pl.Chosen < 0 {
		return nil
	}
	return &pl.Candidates[pl.Chosen]
}
