package experiments

import (
	"fmt"

	"mpcquery/internal/hypercube"
	"mpcquery/internal/hypergraph"
	"mpcquery/internal/mpc"
	"mpcquery/internal/testkit"
)

func init() {
	All = append(All,
		Experiment{"E28", "Adaptive skew-reactive execution and heterogeneity-aware shares", E28Adaptive},
	)
}

// E28Adaptive measures the two mid-2020s extensions of the tutorial's
// one-shot planning story (methodology in EXPERIMENTS.md §E28).
//
// Part A — mispredicted skew. On instances whose planted heavy hitter
// a static planner with optimistic statistics would miss
// (testkit.GenMispredicted), three executions of the same query are
// compared: the static uniform HyperCube plan (what the misprediction
// costs), the adaptive driver (probe round, then a mid-query switch to
// SkewHC), and the static SkewHC plan (the oracle that knew the skew
// up front). The adaptive run must land strictly below static uniform
// — it pays only the probe fraction of the bad plan — and within the
// probe's load of the oracle; both are asserted, not just reported.
//
// Part B — heterogeneous capacities. On a skew-free instance, the
// uniform HyperCube plan is compared against capacity-proportional
// cell ownership (hypercube.RunHet) across increasingly unequal
// capacity profiles. The metric is the capacity-normalized makespan
// max_i(received_i / c_i) — per-round wall-clock time when server i
// processes c_i tuples per tick. The het plan must reduce it on every
// unequal profile; that too is asserted.
func E28Adaptive() *Table {
	t := &Table{
		ID: "E28", Title: "adaptive execution under mispredicted skew; capacity-aware shares",
		SlideRef: "beyond the tutorial: skew-reactive re-planning (EXPERIMENTS.md §E28), het shares per arXiv 2501.08896",
		Header:   []string{"part", "workload", "p", "static L", "adaptive/het", "oracle L", "switched"},
	}

	// Part A: mispredicted skew, uniform vs adaptive vs SkewHC oracle.
	const p, seed = 16, 3
	for _, w := range []struct {
		name string
		q    hypergraph.Query
		gen  testkit.GenConfig
	}{
		{"triangle", hypergraph.Triangle(), testkit.GenConfig{Tuples: 480, HeavyFrac: 0.5}},
		{"star3", hypergraph.Star(3), testkit.GenConfig{Tuples: 240, HeavyFrac: 0.2}},
	} {
		rels := testkit.GenMispredicted(w.q, w.gen, seed)

		cu := mpc.NewCluster(p, seed)
		if _, err := hypercube.Run(cu, w.q, rels, "out", 42, hypercube.LocalGeneric); err != nil {
			panic(fmt.Sprintf("E28 %s uniform: %v", w.name, err))
		}
		uniformL := cu.Metrics().MaxLoad()

		ca := mpc.NewCluster(p, seed)
		res, err := hypercube.RunAdaptive(ca, w.q, rels, "out", 42, hypercube.AdaptiveConfig{})
		if err != nil {
			panic(fmt.Sprintf("E28 %s adaptive: %v", w.name, err))
		}
		if !res.Switched {
			panic(fmt.Sprintf("E28 %s: adaptive run did not switch: %s", w.name, res.Reason))
		}
		adaptiveL := ca.Metrics().MaxLoad()

		cs := mpc.NewCluster(p, seed)
		if _, err := hypercube.RunSkewHC(cs, w.q, rels, "out", 42, 0, hypercube.LocalGeneric); err != nil {
			panic(fmt.Sprintf("E28 %s skewhc: %v", w.name, err))
		}
		oracleL := cs.Metrics().MaxLoad()

		if adaptiveL >= uniformL {
			panic(fmt.Sprintf("E28 %s: adaptive L=%d not below static uniform L=%d", w.name, adaptiveL, uniformL))
		}
		if adaptiveL < oracleL {
			panic(fmt.Sprintf("E28 %s: adaptive L=%d below the SkewHC oracle L=%d — metering bug", w.name, adaptiveL, oracleL))
		}
		t.AddRow("A", w.name+" (mispredicted)", fmtInt(int64(p)),
			fmtInt(uniformL), fmtInt(adaptiveL), fmtInt(oracleL), "yes")
	}
	t.Note("A: adaptive pays only the probe fraction of the mispredicted uniform plan before re-planning;")
	t.Note("   its L sits between the SkewHC oracle (lower bound) and static uniform (what the misprediction costs).")

	// Part B: capacity-normalized makespan, uniform vs het ownership.
	q := hypergraph.Triangle()
	rels := testkit.GenInstance(q, testkit.SkewNone, testkit.GenConfig{Tuples: 1200}, 1)
	for _, prof := range []struct {
		name string
		caps []float64
	}{
		{"2 fast of 8 (4:1)", []float64{4, 4, 1, 1, 1, 1, 1, 1}},
		{"tiers 4:2:1", []float64{4, 4, 2, 2, 1, 1, 1, 1}},
		{"one fast (8:1)", []float64{8, 1, 1, 1, 1, 1, 1, 1}},
	} {
		pb := len(prof.caps)
		cu := mpc.NewCluster(pb, 1)
		if _, err := hypercube.Run(cu, q, rels, "out", 9, hypercube.LocalGeneric); err != nil {
			panic(fmt.Sprintf("E28 uniform/%s: %v", prof.name, err))
		}
		uniformMk := cu.Metrics().NormalizedMakespan(prof.caps)

		ch := mpc.NewCluster(pb, 1)
		ch.SetCapacities(prof.caps)
		if _, err := hypercube.RunHet(ch, q, rels, "out", 9, hypercube.LocalGeneric); err != nil {
			panic(fmt.Sprintf("E28 het/%s: %v", prof.name, err))
		}
		hetMk := ch.Metrics().NormalizedMakespan(prof.caps)

		if hetMk >= uniformMk {
			panic(fmt.Sprintf("E28 %s: het makespan %.1f not below uniform %.1f", prof.name, hetMk, uniformMk))
		}
		// The fluid lower bound: the het run's total work split
		// perfectly in proportion to capacity.
		var sumCap float64
		for _, cp := range prof.caps {
			sumCap += cp
		}
		ideal := float64(ch.Metrics().TotalComm()) / sumCap
		t.AddRow("B", prof.name, fmtInt(int64(pb)),
			fmtF(uniformMk), fmtF(hetMk), fmtF(ideal), "-")
	}
	t.Note("B: makespan = max_i(received_i / c_i) on a skew-free triangle; the uniform plan is slowest-machine-bound,")
	t.Note("   capacity-proportional cell ownership ships load where the capacity is (oracle column: C / Σc, the fluid bound).")
	return t
}
