package experiments

import (
	"fmt"
	"sort"

	"mpcquery/internal/cost"
	"mpcquery/internal/fractional"
	"mpcquery/internal/hypercube"
	"mpcquery/internal/hypergraph"
	"mpcquery/internal/mpc"
	"mpcquery/internal/relation"
	"mpcquery/internal/workload"
)

func init() {
	All = append(All, Experiment{"E23", "Exhaustive share sweep: certifying HyperCube optimality", E23ShareSweep})
}

// E23ShareSweep enumerates EVERY integer share assignment (p1, p2, p3)
// with p1·p2·p3 ≤ p for the triangle query and measures the HyperCube
// load of each — an empirical certificate that (a) no assignment beats
// the slide-36 lower bound N/p^{2/3}, and (b) the LP-chosen shares land
// at (or tie) the true minimum.
func E23ShareSweep() *Table {
	const nv, ne, p = 2000, 12000, 64
	q := hypergraph.Triangle()
	r, s, u := workload.TriangleInput(nv, ne, 17)
	rels := map[string]*relation.Relation{"R": r, "S": s, "T": u}

	type runResult struct {
		shares [3]int
		load   int64
	}
	var results []runResult
	for p1 := 1; p1 <= p; p1++ {
		for p2 := 1; p1*p2 <= p; p2++ {
			for p3 := 1; p1*p2*p3 <= p; p3++ {
				// Skip grids wasting more than half the cluster — they
				// can never win and dominate the sweep time.
				if p1*p2*p3 < p/2 {
					continue
				}
				// Route-only execution: the sweep needs shuffle loads,
				// not 500+ local joins.
				c := mpc.NewCluster(p, 1)
				pl := hypercube.PlanWithShares(q, []int{p1, p2, p3}, 42)
				for _, a := range q.Atoms {
					c.ScatterRoundRobin(rels[a.Name].Rename(a.Name))
				}
				atoms := q.Atoms
				c.Round("sweep", func(srv *mpc.Server, out *mpc.Out) {
					for _, a := range atoms {
						frag := srv.Rel(a.Name)
						if frag == nil {
							continue
						}
						st := out.Open("x:"+a.Name, a.Vars...)
						for i := 0; i < frag.Len(); i++ {
							row := frag.Row(i)
							pl.RouteTuple(a, row, 0, func(server int) {
								st.SendRow(server, row)
							})
						}
					}
				})
				results = append(results, runResult{
					shares: [3]int{p1, p2, p3},
					load:   c.Metrics().MaxLoad(),
				})
			}
		}
	}
	sort.Slice(results, func(a, b int) bool { return results[a].load < results[b].load })

	sh, err := fractional.OptimalShares(q, map[string]int64{"R": ne, "S": ne, "T": ne}, p)
	if err != nil {
		panic(err)
	}
	lpShares := [3]int{sh.Integer[0], sh.Integer[1], sh.Integer[2]}
	var lpLoad int64 = -1
	lpRank := -1
	for i, rr := range results {
		if rr.shares == lpShares {
			lpLoad = rr.load
			lpRank = i + 1
			break
		}
	}
	lb := cost.TriangleOneRoundLB(float64(ne), p)

	t := &Table{
		ID: "E23", Title: "All share grids for the triangle, best first",
		SlideRef: "slides 36–40 (optimality of the LP shares)",
		Header:   []string{"rank", "shares (x,y,z)", "measured L", "vs LB N/p^{2/3}"},
	}
	for i := 0; i < 5 && i < len(results); i++ {
		rr := results[i]
		t.AddRow(fmtInt(int64(i+1)),
			fmt.Sprintf("%v", rr.shares), fmtInt(rr.load),
			fmtRatio(float64(rr.load), lb))
	}
	worst := results[len(results)-1]
	t.AddRow("worst", fmt.Sprintf("%v", worst.shares), fmtInt(worst.load),
		fmtRatio(float64(worst.load), lb))
	t.Note("swept %d grids with ≥ p/2 servers used; N = %d, p = %d, LB = %.0f", len(results), ne, p, lb)
	t.Note("LP chose %v (measured L = %d, rank %d of %d)", lpShares, lpLoad, lpRank, len(results))
	if results[0].load < int64(lb) {
		t.Note("WARNING: a grid beat the lower bound — metering bug!")
	}
	return t
}
