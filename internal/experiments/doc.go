// Package experiments regenerates every table- and figure-like artifact
// of the tutorial's slides (the per-experiment index lives in
// DESIGN.md). Each experiment is a pure function returning a Table of
// paper-formula vs. simulator-measured values; cmd/mpcbench prints them
// and bench_test.go wraps them as benchmarks.
//
// Scales are chosen so the whole suite runs on a laptop in minutes; the
// quantities under study (loads, rounds, communication — all relative
// to IN and p) are scale-free, which is what makes the comparison to
// the slides meaningful.
//
// Experiments assert their own claims: a row whose measured value
// contradicts the theory it illustrates panics rather than printing a
// quietly wrong table, so TestAllExperimentsProduceTables doubles as
// an invariant sweep. E21+ extend past the tutorial proper (sparse
// matmul, multi-round joins, recursion, serving, and E28's adaptive
// skew-reactive execution with heterogeneity-aware shares); each cites
// its methodology section in EXPERIMENTS.md.
package experiments
