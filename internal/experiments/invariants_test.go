package experiments

import (
	"math"
	"testing"

	"mpcquery/internal/cost"
	"mpcquery/internal/hypercube"
	"mpcquery/internal/hypergraph"
	"mpcquery/internal/matmul"
	"mpcquery/internal/mpc"
	"mpcquery/internal/relation"
	"mpcquery/internal/sortmpc"
	"mpcquery/internal/workload"
)

// These tests assert the *physics* of the tutorial: no measured
// execution may beat the proven lower bounds. A violation would mean
// the simulator's metering (or an algorithm's accounting) is broken.

// Any one-round triangle algorithm must pay Ω(N/p^{2/3}) on skew-free
// input (slide 36).
func TestTriangleLoadRespectsOneRoundLB(t *testing.T) {
	const nv, ne = 2000, 20000
	for _, p := range []int{8, 27, 64} {
		r, s, u := workload.TriangleInput(nv, ne, 3)
		rels := map[string]*relation.Relation{"R": r, "S": s, "T": u}
		c := mpc.NewCluster(p, 1)
		if _, err := hypercube.Run(c, hypergraph.Triangle(), rels, "out", 42, hypercube.LocalGeneric); err != nil {
			t.Fatal(err)
		}
		lb := cost.TriangleOneRoundLB(float64(ne), p)
		if load := float64(c.Metrics().MaxLoad()); load < lb {
			t.Fatalf("p=%d: measured load %g beats the lower bound %g — metering broken", p, load, lb)
		}
	}
}

// Sorting communication must respect Ω(N): every tuple moves at least
// once from its arbitrary initial placement in the worst case; PSRS
// ships each tuple exactly once plus samples.
func TestSortCommAtLeastLinear(t *testing.T) {
	const n, p = 50000, 16
	c := mpc.NewCluster(p, 1)
	c.ScatterRoundRobin(workload.Uniform("R", []string{"k", "v"}, n, 1<<30, 2))
	sortmpc.PSRS(c, "R", []string{"k"}, "sorted")
	// Allow for the (1 - 1/p) fraction that actually moves.
	if got := c.Metrics().TotalComm(); got < int64(float64(n)*0.8) {
		t.Fatalf("PSRS total comm %d below linear floor", got)
	}
}

// Fan-limited sorting rounds must be ≥ ceil(log_fan p) (the slide-105
// structure).
func TestFanSortRoundsRespectLogBound(t *testing.T) {
	const n, p = 20000, 32
	for _, fan := range []int{2, 4, 8} {
		c := mpc.NewCluster(p, 1)
		c.ScatterRoundRobin(workload.Uniform("R", []string{"k", "v"}, n, 1<<30, 3))
		res := sortmpc.FanLimitedSort(c, "R", []string{"k"}, "sorted", fan)
		levels := int(math.Ceil(math.Log(float64(p)) / math.Log(float64(fan))))
		if res.Rounds < levels {
			t.Fatalf("fan=%d: %d rounds < log_fan p = %d", fan, res.Rounds, levels)
		}
	}
}

// Matrix multiplication communication must respect C = Ω(n³/√L)
// up to the constant (slides 123–124).
func TestMatMulCommRespectsLB(t *testing.T) {
	const n = 32
	a, b := matmul.Random(n, 8, 1), matmul.Random(n, 8, 2)
	for _, h := range []int{2, 4} {
		c := mpc.NewCluster(h*h, 1)
		if _, err := matmul.SquareBlock(c, a, b, h, 1); err != nil {
			t.Fatal(err)
		}
		load := float64(c.Metrics().MaxLoad())
		lb := cost.MatMulCommLB(n, load)
		if got := float64(c.Metrics().TotalComm()); got < lb {
			t.Fatalf("H=%d: C=%g beats the lower bound %g", h, got, lb)
		}
	}
}

// The HyperCube load must be at least the LP optimum (which equals the
// max over fractional edge packings) divided by a small constant for
// hashing variance — here we assert ≥ half the per-atom bound.
func TestHyperCubeLoadAtLeastLPBound(t *testing.T) {
	const ne = 30000
	p := 64
	r, s, u := workload.TriangleInput(3000, ne, 9)
	rels := map[string]*relation.Relation{"R": r, "S": s, "T": u}
	c := mpc.NewCluster(p, 1)
	if _, err := hypercube.Run(c, hypergraph.Triangle(), rels, "out", 42, hypercube.LocalGeneric); err != nil {
		t.Fatal(err)
	}
	lp, err := cost.HyperCubeLoad(hypergraph.Triangle(),
		map[string]int64{"R": ne, "S": ne, "T": ne}, p)
	if err != nil {
		t.Fatal(err)
	}
	if load := float64(c.Metrics().MaxLoad()); load < lp/2 {
		t.Fatalf("measured load %g below half the LP bound %g", load, lp)
	}
}

// Gather after any algorithm must conserve output: spot-check that the
// E-series drivers' verification logic is itself sound by running one
// end-to-end with independently computed ground truth.
func TestExperimentGroundTruthSpotCheck(t *testing.T) {
	r, s, u := workload.TriangleWithPlantedTriangles(100, 300, 7, 11)
	rels := map[string]*relation.Relation{"R": r, "S": s, "T": u}
	c := mpc.NewCluster(8, 1)
	if _, err := hypercube.Run(c, hypergraph.Triangle(), rels, "out", 42, hypercube.LocalGeneric); err != nil {
		t.Fatal(err)
	}
	got := c.Gather("out")
	if got.Len() < 7 {
		t.Fatalf("planted 7 triangles, found %d", got.Len())
	}
}
