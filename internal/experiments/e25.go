package experiments

import (
	"fmt"

	"mpcquery/internal/mpc"
	"mpcquery/internal/recursive"
	"mpcquery/internal/relation"
	"mpcquery/internal/workload"
)

func init() {
	All = append(All,
		Experiment{"E25", "Recursive queries: rounds track iterations, iterations track diameter", E25RecursiveRounds},
		Experiment{"E26", "Incremental view maintenance: delta cost scales with the batch, not the base", E26IVMDeltaScaling},
	)
}

// E25RecursiveRounds evaluates semi-naive transitive closure on graphs
// whose diameter varies independently of size: chains (diameter = n−1),
// random digraphs (logarithmic diameter), and a heavy-tailed graph.
// Unlike every one-round or constant-round algorithm in this repo, the
// round count of a fixpoint is data-dependent — exactly two metered
// rounds (probe + extend) per semi-naive iteration, and the iteration
// count is the longest shortest-path the closure has to grow, not the
// input size. The chain rows pin that: a quarter of the edges of the
// equal-n random row and half its closure, yet ~17× the rounds.
func E25RecursiveRounds() *Table {
	const p = 8
	t := &Table{
		ID: "E25", Title: "Semi-naive fixpoint: rounds vs iterations vs diameter",
		SlideRef: "semi-naive Datalog evaluation as synchronous MPC rounds",
		Header:   []string{"graph", "edges", "closure size", "iterations", "rounds", "max load L", "total comm C"},
	}
	chain := func(n int) *relation.Relation {
		e := relation.New("E", "src", "dst")
		for i := 0; i < n-1; i++ {
			e.Append(relation.Value(i), relation.Value(i+1))
		}
		return e
	}
	cases := []struct {
		name  string
		edges *relation.Relation
	}{
		{"chain n=60", chain(60)},
		{"chain n=120", chain(120)},
		{"random n=60 m=240", workload.RandomGraph("E", "src", "dst", 60, 240, 5)},
		{"random n=120 m=480", workload.RandomGraph("E", "src", "dst", 120, 480, 5)},
		{"powerlaw n=120 m=480", workload.PowerLawGraph("E", "src", "dst", 120, 480, 5)},
	}
	for _, cse := range cases {
		c := mpc.NewCluster(p, 1)
		res, err := recursive.TransitiveClosure(c, cse.edges, "tc", 7)
		if err != nil {
			panic(fmt.Sprintf("E25 %s: %v", cse.name, err))
		}
		m := c.Metrics()
		t.AddRow(cse.name, fmtInt(int64(cse.edges.Len())), fmtInt(int64(res.OutSize)),
			fmtInt(int64(res.Iterations)), fmtInt(int64(res.Rounds)),
			fmtInt(m.MaxLoad()), fmtInt(m.TotalComm()))
	}
	t.Note("p = %d; every row meters exactly 2 rounds per iteration", p)
	t.Note("iterations follow the longest shortest path (chain: n−1; random digraph: O(log n)),")
	t.Note("so the chain rows pay ~17× the rounds of equal-n random graphs — the r vs L trade-off")
	t.Note("of the multi-round chapters, now with r chosen by the data instead of the algorithm")
	return t
}

// E26IVMDeltaScaling maintains a standing transitive closure under
// insert batches of doubling size and compares the communication of
// the maintenance batch against recomputing the closure from scratch
// on the mutated edge set. Delta maintenance touches work proportional
// to what the batch actually derives, so its cost grows with the batch
// while recomputation pays the full base every time.
func E26IVMDeltaScaling() *Table {
	const p = 8
	t := &Table{
		ID: "E26", Title: "IVM: maintenance comm vs batch size, against full recomputation",
		SlideRef: "delta/semi-naive rules applied to view maintenance",
		Header:   []string{"batch (inserts)", "delta comm C", "recompute comm C", "delta/recompute", "delta rounds", "recompute rounds"},
	}
	const n, m = 100, 260
	base := workload.RandomGraph("E", "src", "dst", n, m, 11)
	for _, batch := range []int{1, 2, 4, 8, 16, 32} {
		c := mpc.NewCluster(p, 1)
		view, _, err := recursive.NewClosureView(c, base, "tcv", 13)
		if err != nil {
			panic(fmt.Sprintf("E26 batch=%d: %v", batch, err))
		}
		pre := c.Metrics().TotalComm()
		preRounds := c.Metrics().Rounds()
		ops := make([]recursive.EdgeOp, batch)
		mutated := base.Clone()
		for i := range ops {
			from, to := relation.Value(1000+i), relation.Value((i*7)%n)
			ops[i] = recursive.EdgeOp{Insert: true, From: from, To: to}
			mutated.AppendRow([]relation.Value{from, to})
		}
		if _, err := view.ApplyBatch(ops); err != nil {
			panic(fmt.Sprintf("E26 batch=%d apply: %v", batch, err))
		}
		deltaComm := c.Metrics().TotalComm() - pre
		deltaRounds := c.Metrics().Rounds() - preRounds

		sc := mpc.NewCluster(p, 1)
		res, err := recursive.TransitiveClosure(sc, mutated, "tc", 13)
		if err != nil {
			panic(fmt.Sprintf("E26 batch=%d recompute: %v", batch, err))
		}
		full := sc.Metrics().TotalComm()
		t.AddRow(fmtInt(int64(batch)), fmtInt(deltaComm), fmtInt(full),
			fmt.Sprintf("%.3f", float64(deltaComm)/float64(full)),
			fmtInt(int64(deltaRounds)), fmtInt(int64(res.Rounds)))
	}
	t.Note("base graph n = %d vertices, m = %d edges, p = %d; inserts attach fresh source vertices", n, m, p)
	t.Note("each batch is applied to a fresh standing view of the same base, so rows are comparable;")
	t.Note("delete batches carry no such bound — DRed's over-delete can exceed recomputation on dense closures")
	return t
}
