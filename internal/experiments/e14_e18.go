package experiments

import (
	"fmt"
	"math"

	"mpcquery/internal/cost"
	"mpcquery/internal/fractional"
	"mpcquery/internal/hypercube"
	"mpcquery/internal/hypergraph"
	"mpcquery/internal/mpc"
	"mpcquery/internal/relation"
	"mpcquery/internal/sortmpc"
	"mpcquery/internal/workload"
	"mpcquery/internal/yannakakis"
)

// E14GYM reproduces slides 64–94: serial Yannakakis is O(IN+OUT) with
// intermediates bounded by OUT; vanilla GYM needs 9 rounds on the
// star-4 query where the optimized variant needs 4.
func E14GYM() *Table {
	t := &Table{
		ID: "E14", Title: "Yannakakis / GYM on acyclic queries",
		SlideRef: "slides 64–94",
		Header:   []string{"query", "variant", "rounds", "max load L", "(IN+OUT)/p"},
	}
	const p = 8
	run := func(q hypergraph.Query, rels map[string]*relation.Relation) {
		ok, jt := hypergraph.IsAcyclic(q)
		if !ok {
			panic("E14: query not acyclic")
		}
		in := 0
		for _, a := range q.Atoms {
			in += rels[a.Name].Len()
		}
		serialOut, st := yannakakis.Serial(jt, rels)
		outSize := serialOut.Len()
		bound := float64(in+outSize) / p
		t.AddRow(q.Name, fmt.Sprintf("serial (maxInter=%d ≤ OUT=%d)", st.MaxIntermediate, outSize),
			"-", "-", "-")
		cv := mpc.NewCluster(p, 1)
		rv := yannakakis.GYM(cv, jt, rels, "out", 42)
		t.AddRow(q.Name, "GYM vanilla", fmtInt(int64(rv.Rounds)),
			fmtInt(cv.Metrics().MaxLoad()), fmtF(bound))
		co := mpc.NewCluster(p, 1)
		ro := yannakakis.GYMOptimized(co, jt, rels, "out", 42)
		t.AddRow(q.Name, "GYM optimized", fmtInt(int64(ro.Rounds)),
			fmtInt(co.Metrics().MaxLoad()), fmtF(bound))
	}
	// Star-4 (the slide 80–94 example).
	starRels := map[string]*relation.Relation{}
	for i, a := range hypergraph.Star(4).Atoms {
		starRels[a.Name] = workload.Uniform(a.Name, a.Vars, 4000, 1200, int64(i+1))
	}
	run(hypergraph.Star(4), starRels)
	// The slide-64 tree query.
	run(hypergraph.SlideTree(), workload.SlideTreeInput(4000, 3))
	t.Note("p = %d; vanilla = one semijoin/join per round; optimized = level-parallel semijoins + one-round HyperCube join phase", p)
	return t
}

// E15Crossover reproduces slide 78: GYM's load (IN+OUT)/p crosses
// HyperCube's IN/p^{1/τ*} at OUT ≈ p^{1−1/τ*}·IN. The path-4 instance
// is built so the OUT-sized intermediate must be co-partitioned in the
// final join round — GYM's load genuinely pays OUT/p.
func E15Crossover() *Table {
	const n, p = 2000, 16
	q := hypergraph.Path(4) // τ* = 2 ⇒ crossover at OUT = √p·IN
	ep, err := fractional.MaxEdgePacking(q)
	if err != nil {
		panic(err)
	}
	ok, jt := hypergraph.IsAcyclic(q)
	if !ok {
		panic("path-4 must be acyclic")
	}
	t := &Table{
		ID: "E15", Title: "GYM vs HyperCube crossover on path-4",
		SlideRef: "slide 78",
		Header:   []string{"OUT", "OUT/IN", "GYM L", "HC L", "predicted winner", "measured winner"},
	}
	for _, fanout := range []int{1, 8, 32, 64} {
		// R1 fans N tuples into N/fanout keys of A1 and R2 fans each key
		// back out, so R1 ⋈ R2 already has OUT = N·fanout tuples; the
		// matching R3 and R4 then force GYM to re-ship that OUT-sized
		// intermediate in a later co-partitioned join round — its load
		// genuinely pays OUT/p, as the (IN+OUT)/p bound says.
		keys := n / fanout
		r1 := relation.New("R1", "A0", "A1")
		r2 := relation.New("R2", "A1", "A2")
		r3 := relation.New("R3", "A2", "A3")
		r4 := relation.New("R4", "A3", "A4")
		for i := 0; i < n; i++ {
			r1.Append(relation.Value(i), relation.Value(i%keys))
			r2.Append(relation.Value(i%keys), relation.Value(i))
			r3.Append(relation.Value(i), relation.Value(i))
			r4.Append(relation.Value(i), relation.Value(i))
		}
		rels := map[string]*relation.Relation{"R1": r1, "R2": r2, "R3": r3, "R4": r4}
		in := r1.Len() + r2.Len() + r3.Len() + r4.Len()
		outSize := n * fanout

		cg := mpc.NewCluster(p, 1)
		yannakakis.GYM(cg, jt, rels, "out", 42)
		gymLoad := cg.Metrics().MaxLoad()

		chc := mpc.NewCluster(p, 1)
		if _, err := hypercube.Run(chc, q, rels, "out", 42, hypercube.LocalGeneric); err != nil {
			panic(err)
		}
		hcLoad := chc.Metrics().MaxLoad()

		crossover := cost.GYMCrossoverOut(float64(in), p, ep.Tau)
		predicted := "GYM"
		if float64(outSize) >= crossover {
			predicted = "HyperCube"
		}
		measured := "GYM"
		if hcLoad < gymLoad {
			measured = "HyperCube"
		}
		t.AddRow(fmtInt(int64(outSize)), fmtRatio(float64(outSize), float64(in)),
			fmtInt(gymLoad), fmtInt(hcLoad), predicted, measured)
	}
	t.Note("τ* = %.0f, crossover at OUT = p^{1-1/τ*}·IN = √%d·IN ≈ %.0f·IN", ep.Tau, p, math.Sqrt(p))
	return t
}

// E16WidthDepth reproduces slides 79/95: GHDs of the same query with
// different width/depth realize the r = O(d), L = O((IN^w + OUT)/p)
// trade-off.
func E16WidthDepth() *Table {
	const n, size, p = 8, 12, 8
	rels := map[string]*relation.Relation{}
	for _, r := range workload.PathInput(n, size) {
		rels[r.Name()] = r
	}
	t := &Table{
		ID: "E16", Title: "GHD width/depth trade-off on path-8",
		SlideRef: "slides 79, 95",
		Header:   []string{"GHD", "width w", "depth d", "rounds", "measured L", "(IN^w+OUT)/p"},
	}
	in := float64(n * size)
	outSize := float64(size) // matchings
	for _, spec := range []struct {
		name string
		g    *hypergraph.GHD
	}{
		{"chain (slide 79 left)", hypergraph.PathChainGHD(n)},
		{"balanced (w=3, d≈log n)", hypergraph.PathBalancedGHD(n)},
		{"flat (w≈n/2, d=1)", hypergraph.PathFlatGHD(n)},
	} {
		c := mpc.NewCluster(p, 1)
		res := yannakakis.GHDRun(c, spec.g, rels, "out", 42)
		_, bound := cost.GHDRoundsLoad(in, outSize, spec.g.Width(), spec.g.Depth(), p)
		t.AddRow(spec.name, fmtInt(int64(spec.g.Width())), fmtInt(int64(spec.g.Depth())),
			fmtInt(int64(res.Rounds)), fmtInt(c.Metrics().MaxLoad()), fmtSci(bound))
	}
	t.Note("matching data, N = %d per atom: wider bags mean fewer rounds but bag materialization costs IN^w", size)
	return t
}

// E17PSRS reproduces slides 100–102: PSRS load is Θ(N/p) while
// p ≪ N^{1/3} and degrades beyond.
func E17PSRS() *Table {
	const n = 200000
	t := &Table{
		ID: "E17", Title: "PSRS load scaling",
		SlideRef: "slides 100–102",
		Header:   []string{"p", "partition L", "N/p", "ratio", "sample-round L (p(p-1))"},
	}
	for _, p := range []int{4, 8, 16, 32, 64} {
		c := mpc.NewCluster(p, 1)
		c.ScatterRoundRobin(workload.Uniform("R", []string{"k", "v"}, n, 1<<30, int64(p)))
		sortmpc.PSRS(c, "R", []string{"k"}, "sorted")
		if err := sortmpc.VerifySorted(c, "sorted", []string{"k"}); err != nil {
			panic(err)
		}
		part := c.Metrics().MaxLoadOfRound("sort:partition")
		samp := c.Metrics().MaxLoadOfRound("sort:sample")
		t.AddRow(fmtInt(int64(p)), fmtInt(part), fmtInt(int64(n/p)),
			fmtRatio(float64(part), float64(n)/float64(p)), fmtInt(samp))
	}
	t.Note("N = %d, N^{1/3} ≈ %.0f: the p(p−1) sample broadcast is the term that eventually dominates", n, math.Cbrt(n))
	return t
}

// E18SortBounds reproduces slides 104–106: bounded per-round fan-out
// forces Ω(log_L N)-style round growth, and the practical recipe
// (splitters + partition + local sort) is what the contest winners use.
func E18SortBounds() *Table {
	const n, p = 100000, 64
	t := &Table{
		ID: "E18", Title: "Sorting rounds under bounded fan-out",
		SlideRef: "slides 104–106",
		Header:   []string{"algorithm", "fan", "rounds", "max L", "total C", "analytic log_fan p"},
	}
	for _, fan := range []int{2, 4, 8, 64} {
		c := mpc.NewCluster(p, 1)
		c.ScatterRoundRobin(workload.Uniform("R", []string{"k", "v"}, n, 1<<30, int64(fan)))
		res := sortmpc.FanLimitedSort(c, "R", []string{"k"}, "sorted", fan)
		if err := sortmpc.VerifySorted(c, "sorted", []string{"k"}); err != nil {
			panic(err)
		}
		t.AddRow("fan-limited", fmtInt(int64(fan)), fmtInt(int64(res.Rounds)),
			fmtInt(c.Metrics().MaxLoad()), fmtInt(c.Metrics().TotalComm()),
			fmtF(math.Ceil(math.Log(float64(p))/math.Log(float64(fan)))))
	}
	// The practical one-shot PSRS row (the slide-106 "in practice" recipe).
	c := mpc.NewCluster(p, 1)
	c.ScatterRoundRobin(workload.Uniform("R", []string{"k", "v"}, n, 1<<30, 99))
	res := sortmpc.PSRS(c, "R", []string{"k"}, "sorted")
	t.AddRow("PSRS (practice)", "p", fmtInt(int64(res.Rounds)),
		fmtInt(c.Metrics().MaxLoad()), fmtInt(c.Metrics().TotalComm()), "1")
	t.Note("N = %d, p = %d; total C grows as N·(rounds) — the Ω(N·log_L N) communication bound in action", n, p)
	t.Note("the slide-106 contest table is not reproducible (external systems); its lesson — coarse-grained p with splitter partitioning — is the PSRS row")
	return t
}
