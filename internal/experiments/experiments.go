package experiments

import (
	"fmt"
	"strings"
)

// Table is one experiment's output.
type Table struct {
	ID       string
	Title    string
	SlideRef string
	Header   []string
	Rows     [][]string
	Notes    []string
	// Charts render figure-type artifacts (curves) under the table.
	Charts []*Chart
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Header) {
		panic(fmt.Sprintf("experiments: row has %d cells, header has %d", len(cells), len(t.Header)))
	}
	t.Rows = append(t.Rows, cells)
}

// Note appends a free-text note shown under the table.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render returns an aligned plain-text rendering.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s (%s)\n", t.ID, t.Title, t.SlideRef)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&b, "  %-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	for _, ch := range t.Charts {
		b.WriteByte('\n')
		b.WriteString(ch.Render())
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n*Source: %s*\n\n", t.ID, t.Title, t.SlideRef)
	fmt.Fprintf(&b, "| %s |\n", strings.Join(t.Header, " | "))
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(sep, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(&b, "| %s |\n", strings.Join(row, " | "))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n> %s\n", n)
	}
	for _, ch := range t.Charts {
		fmt.Fprintf(&b, "\n```\n%s```\n", ch.Render())
	}
	b.WriteByte('\n')
	return b.String()
}

// Experiment pairs an ID with its driver.
type Experiment struct {
	ID    string
	Title string
	Run   func() *Table
}

// All lists every experiment in ID order.
var All = []Experiment{
	{"E01", "MPC cost regimes", E01CostRegimes},
	{"E02", "Hash-join load concentration vs degree", E02LoadConcentration},
	{"E03", "Skew-threshold curve", E03SkewThreshold},
	{"E04", "Cartesian product grid load", E04Cartesian},
	{"E05", "Skew-aware two-way join", E05SkewJoin},
	{"E06", "Parallel sort join", E06SortJoin},
	{"E07", "Triangle HyperCube vs baselines", E07TriangleHC},
	{"E08", "Unequal-size triangle shares", E08UnequalShares},
	{"E09", "HyperCube speedup curve", E09Speedup},
	{"E10", "SkewHC residual patterns", E10SkewHC},
	{"E11", "1-round vs multi-round summary", E11OneVsMulti},
	{"E12", "Scalability limit of IN/p^{1/τ*}", E12ScalabilityLimit},
	{"E13", "Binary-join intermediate blowup", E13IntermediateBlowup},
	{"E14", "Yannakakis and GYM round counts", E14GYM},
	{"E15", "GYM vs HyperCube crossover", E15Crossover},
	{"E16", "GHD width/depth trade-off", E16WidthDepth},
	{"E17", "PSRS load scaling", E17PSRS},
	{"E18", "Sorting round/communication bounds", E18SortBounds},
	{"E19", "Matrix multiplication costs", E19MatMul},
	{"E20", "Communication vs load trade-off", E20CommLoadTradeoff},
}

// ByID returns the experiment with the given ID, or nil.
func ByID(id string) *Experiment {
	for i := range All {
		if All[i].ID == id {
			return &All[i]
		}
	}
	return nil
}

// helpers

func fmtInt(v int64) string { return fmt.Sprintf("%d", v) }
func fmtF(v float64) string { return fmt.Sprintf("%.1f", v) }
func fmtRatio(a, b float64) string {
	if b == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2f", a/b)
}
func fmtSci(v float64) string { return fmt.Sprintf("%.3g", v) }
