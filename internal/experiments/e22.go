package experiments

import (
	"math"

	"mpcquery/internal/bigjoin"
	"mpcquery/internal/hypercube"
	"mpcquery/internal/hypergraph"
	"mpcquery/internal/mpc"
	"mpcquery/internal/relation"
	"mpcquery/internal/workload"
)

func init() {
	All = append(All, Experiment{"E22", "BiGJoin (variable-at-a-time) vs HyperCube", E22BigJoin})
}

// E22BigJoin compares the slide-97 practical family — variable-at-a-
// time multi-round joins à la BiGJoin — against the one-round HyperCube
// on the triangle and 4-cycle queries: BiGJoin trades rounds for
// shipping partial bindings instead of replicated inputs, so its load
// tracks the binding-set sizes while HyperCube's tracks IN/p^{1/τ*}.
func E22BigJoin() *Table {
	const p = 16
	t := &Table{
		ID: "E22", Title: "BiGJoin vs HyperCube",
		SlideRef: "slide 97 (Ammar et al., VLDB '18)",
		Header: []string{"query", "algorithm", "rounds", "max L", "total C",
			"max bindings", "OUT"},
	}
	run := func(q hypergraph.Query, rels map[string]*relation.Relation) {
		// Reference output size.
		inputs := make([]*relation.Relation, len(q.Atoms))
		for i, a := range q.Atoms {
			rr := relation.New(a.Name, a.Vars...)
			src := rels[a.Name]
			for j := 0; j < src.Len(); j++ {
				rr.AppendRow(src.Row(j))
			}
			inputs[i] = rr
		}
		outSize := relation.GenericJoin("w", q.Vars(), inputs...).Len()

		pl, err := bigjoin.NewPlan(q, nil)
		if err != nil {
			panic(err)
		}
		cb := mpc.NewCluster(p, 1)
		resB := bigjoin.Run(cb, pl, rels, "out", 42)
		t.AddRow(q.Name, "BiGJoin", fmtInt(int64(resB.Rounds)),
			fmtInt(cb.Metrics().MaxLoad()), fmtInt(cb.Metrics().TotalComm()),
			fmtInt(int64(resB.MaxBindings)), fmtInt(int64(outSize)))

		ch := mpc.NewCluster(p, 1)
		resH, err := hypercube.Run(ch, q, rels, "out", 42, hypercube.LocalGeneric)
		if err != nil {
			panic(err)
		}
		t.AddRow(q.Name, "HyperCube", fmtInt(int64(resH.Rounds)),
			fmtInt(ch.Metrics().MaxLoad()), fmtInt(ch.Metrics().TotalComm()),
			"-", fmtInt(int64(outSize)))
		if got := cb.Gather("out"); got.Len() != outSize {
			panic("bigjoin output size wrong")
		}
	}

	// Sparse triangle: few bindings survive, BiGJoin ships little.
	r, s, u := workload.TriangleInput(4000, 20000, 3)
	run(hypergraph.Triangle(), map[string]*relation.Relation{"R": r, "S": s, "T": u})

	// Denser 4-cycle: the intermediate open-wedge bindings (IN·d tuples)
	// dominate BiGJoin while HyperCube stays at IN/√p replication.
	g := workload.RandomGraph("E", "a", "b", 250, 4000, 5)
	q4 := hypergraph.Cycle(4)
	rels4 := map[string]*relation.Relation{}
	for _, a := range q4.Atoms {
		e := relation.New(a.Name, a.Vars...)
		for i := 0; i < g.Len(); i++ {
			e.AppendRow(g.Row(i))
		}
		rels4[a.Name] = e
	}
	run(q4, rels4)
	t.Note("p = %d; HyperCube load for the 4-cycle is ≈ 4·N/√p = %.0f — BiGJoin instead pays for the open-wedge bindings", p, 4*4000/math.Sqrt(p))
	return t
}
