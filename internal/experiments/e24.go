package experiments

import (
	"fmt"

	"mpcquery/internal/core"
	"mpcquery/internal/hypergraph"
	"mpcquery/internal/plan"
	"mpcquery/internal/testkit"
)

func init() {
	All = append(All, Experiment{"E24", "Planner accuracy: predicted vs measured load", E24PlannerAccuracy})
}

// E24PlannerAccuracy runs the cost-based planner (internal/plan) over
// the tutorial's standard query shapes on uniform and Zipf-skewed
// inputs, executes the chosen plan, and reports predicted vs measured
// maximum load. The interesting column is the ratio: near 1 on
// uniform inputs, where the independence assumptions behind the
// estimates hold, and noisier on Zipf inputs, where the heavy-aware
// chain estimator deliberately charges risky multi-round plans for
// worst-case heavy-hitter alignment — mispredicting the winner's
// load is acceptable; picking a plan that blows up is not (that is
// what the plannertest 2× competitive gate enforces).
func E24PlannerAccuracy() *Table {
	const p = 8
	gen := testkit.GenConfig{Tuples: 1000, Domain: 350}
	queries := []hypergraph.Query{
		hypergraph.TwoWayJoin(),
		hypergraph.Triangle(),
		hypergraph.Path(4),
		hypergraph.Star(3),
	}

	t := &Table{
		ID: "E24", Title: "Planner accuracy: predicted vs measured max load",
		SlideRef: "cost model of slides 20–26 applied to plan selection",
		Header:   []string{"query", "skew", "chosen", "predicted L", "measured L", "pred/meas"},
	}
	for _, q := range queries {
		for _, skew := range []testkit.Skew{testkit.SkewUniform, testkit.SkewZipf} {
			rels := testkit.GenInstance(q, skew, gen, 1)
			pl, err := plan.For(q, rels, p, plan.Options{})
			if err != nil {
				panic(fmt.Sprintf("E24 %s/%s: %v", q.Name, skew, err))
			}
			res, err := pl.Execute(core.NewEngine(p, 1), rels)
			if err != nil {
				panic(fmt.Sprintf("E24 %s/%s execute: %v", q.Name, skew, err))
			}
			t.AddRow(q.Name, skew.String(), string(pl.Best().Alg),
				fmtInt(int64(res.PredictedL)), fmtInt(res.MeasuredL),
				fmt.Sprintf("%.2f", res.Ratio))
		}
	}
	t.Note("n = %d tuples/relation, p = %d, seed 1; plans chosen by min predicted L", gen.Tuples, p)
	t.Note("prediction errors are tolerated; the plannertest harness separately enforces the chosen")
	t.Note("plan's measured load stays within 2× of the best measured candidate")
	return t
}
