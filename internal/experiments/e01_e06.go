package experiments

import (
	"fmt"
	"math"

	"mpcquery/internal/cost"
	"mpcquery/internal/join2"
	"mpcquery/internal/mpc"
	"mpcquery/internal/relation"
	"mpcquery/internal/stats"
	"mpcquery/internal/workload"
)

// E01CostRegimes reproduces the cost table of slides 13–18: the load
// and round count of the ideal, practical, and two naïve strategies on
// the same two-way join.
func E01CostRegimes() *Table {
	const n, p = 20000, 16
	in := 2 * n
	r := workload.Matching("R", []string{"x", "y"}, n)
	s := workload.Matching("S", []string{"y", "z"}, n)
	t := &Table{
		ID: "E01", Title: "MPC cost regimes on a 2-way join",
		SlideRef: "slides 13–18",
		Header:   []string{"strategy", "formula", "predicted L", "measured L", "rounds"},
	}

	// Ideal: one-round parallel hash join, L = IN/p.
	c1 := mpc.NewCluster(p, 1)
	join2.HashJoin(c1, r, s, "out", 42)
	t.AddRow("ideal (hash join)", "IN/p", fmtInt(int64(in/p)),
		fmtInt(c1.Metrics().MaxLoad()), fmtInt(int64(c1.Metrics().Rounds())))

	// Practical ε: one-round with load IN/p^{1-ε}; realized here by the
	// broadcast join (ε such that |R| = IN/p^{1-ε}).
	c2 := mpc.NewCluster(p, 1)
	join2.BroadcastJoin(c2, r, s, "out")
	t.AddRow("practical (broadcast)", "IN/p^{1-ε}", fmtInt(int64(n)),
		fmtInt(c2.Metrics().MaxLoad()), fmtInt(int64(c2.Metrics().Rounds())))

	// Naïve 1: everything to one server, one round, L = IN.
	c3 := mpc.NewCluster(p, 1)
	c3.ScatterRoundRobin(r)
	c3.ScatterRoundRobin(s)
	c3.Round("naive1:gather", func(srv *mpc.Server, out *mpc.Out) {
		for _, name := range []string{"R", "S"} {
			frag := srv.Rel(name)
			if frag == nil {
				continue
			}
			st := out.Open("all:"+name, frag.Attrs()...)
			for i := 0; i < frag.Len(); i++ {
				st.SendRow(0, frag.Row(i))
			}
		}
	})
	c3.LocalStep(func(srv *mpc.Server) {
		if srv.ID() != 0 {
			return
		}
		rf := srv.RelOrEmpty("all:R", "x", "y")
		sf := srv.RelOrEmpty("all:S", "y", "z")
		srv.Put(relation.HashJoin("out", rf.Rename("R"), sf.Rename("S")))
	})
	t.AddRow("naive 1 (single server)", "IN", fmtInt(int64(in)),
		fmtInt(c3.Metrics().MaxLoad()), fmtInt(int64(c3.Metrics().Rounds())))

	// Naïve 2: block-nested rotation — p rounds, L = IN/p per round.
	c4 := mpc.NewCluster(p, 1)
	c4.ScatterRoundRobin(r)
	c4.ScatterRoundRobin(s)
	for rd := 0; rd < p; rd++ {
		c4.Round(fmt.Sprintf("naive2:rot%d", rd), func(srv *mpc.Server, out *mpc.Out) {
			frag := srv.Rel("R")
			if frag == nil {
				return
			}
			st := out.Open("Rvisit", "x", "y")
			for i := 0; i < frag.Len(); i++ {
				st.SendRow((srv.ID()+1)%p, frag.Row(i))
			}
			srv.Delete("R")
		})
		c4.LocalStep(func(srv *mpc.Server) {
			rv := srv.RelOrEmpty("Rvisit", "x", "y")
			sf := srv.RelOrEmpty("S", "y", "z")
			j := relation.HashJoin("out", rv.Rename("R"), sf)
			if prev := srv.Rel("out"); prev != nil {
				prev.AppendAll(j)
			} else {
				srv.Put(j)
			}
			srv.Put(rv.Rename("R"))
			srv.Delete("Rvisit")
		})
	}
	t.AddRow("naive 2 (rotation)", "IN/p per round, r=p", fmtInt(int64(in/p)),
		fmtInt(c4.Metrics().MaxLoad()), fmtInt(int64(c4.Metrics().Rounds())))
	t.Note("IN = %d tuples, p = %d servers; matching (skew-free) data", in, p)
	return t
}

// E02LoadConcentration reproduces slides 24–25: how the max hash-
// partition load concentrates around IN/p without skew, and how degree
// d weakens the Chernoff exponent by a factor d.
func E02LoadConcentration() *Table {
	const n, p = 100000, 16
	const delta = 0.3
	t := &Table{
		ID: "E02", Title: "Hash-partition load vs value degree",
		SlideRef: "slides 24–25",
		Header:   []string{"degree d", "measured L", "L/(IN/p)", "P[L≥1.3·IN/p] bound"},
	}
	for _, d := range []int{1, 10, 100, 1000, 10000} {
		rel := workload.UniformDegree("R", "y", "v", n, d)
		c := mpc.NewCluster(p, int64(d))
		c.ScatterRoundRobin(rel)
		c.Round("partition", func(srv *mpc.Server, out *mpc.Out) {
			frag := srv.Rel("R")
			if frag == nil {
				return
			}
			st := out.Open("P", "y", "v")
			col := frag.MustCol("y")
			for i := 0; i < frag.Len(); i++ {
				row := frag.Row(i)
				st.SendRow(relation.Bucket(relation.Hash64(row[col], 42), p), row)
			}
		})
		load := c.Metrics().MaxLoad()
		bound := cost.HashLoadTailBound(float64(n), p, float64(d), delta)
		boundStr := fmtSci(bound)
		if bound > 1 {
			boundStr = "vacuous (>1)"
		}
		t.AddRow(fmtInt(int64(d)), fmtInt(load),
			fmtRatio(float64(load), float64(n)/p), boundStr)
	}
	t.Note("IN = %d, p = %d; the bound is p·exp(−δ²·IN/(3pd)), δ = %.1f", n, p, delta)
	return t
}

// E03SkewThreshold regenerates the slide-26 curve — the largest degree
// tolerating ≤30%% overload with 95%% confidence at IN = 100 billion —
// and validates the formula by Monte-Carlo at laptop scale.
func E03SkewThreshold() *Table {
	t := &Table{
		ID: "E03", Title: "Degree threshold for ≤30% overload w.p. 95%",
		SlideRef: "slide 26",
		Header:   []string{"p", "threshold d* (IN=1e11)", "d* (in millions)"},
	}
	var xs, ys []float64
	for p := 50; p <= 1000; p += 50 {
		d := cost.SkewThresholdDegree(100e9, p, 0.3, 0.05)
		xs = append(xs, float64(p))
		ys = append(ys, d/1e6)
		if p == 50 || p%200 == 0 || p == 100 {
			t.AddRow(fmtInt(int64(p)), fmtSci(d), fmtF(d/1e6))
		}
	}
	t.Charts = append(t.Charts, &Chart{
		Title:  "slide-26 figure: degree threshold (millions) vs p",
		XLabel: "number of processors p",
		YLabel: "d (millions)",
		Series: []Series{{Name: "d*(p)", Marker: '*', X: xs, Y: ys}},
	})
	// Monte-Carlo validation at IN = 200k, p = 16: at the threshold
	// degree the overload probability should be ≈ the target 5%.
	const n, p, trials = 200000, 16, 60
	dStar := cost.SkewThresholdDegree(float64(n), p, 0.3, 0.05)
	d := int(dStar)
	for n%d != 0 {
		d--
	}
	over := 0
	for trial := 0; trial < trials; trial++ {
		rel := workload.UniformDegree("R", "y", "v", n, d)
		c := mpc.NewCluster(p, int64(trial))
		c.ScatterRoundRobin(rel)
		seed := uint64(trial)*7919 + 13
		c.Round("partition", func(srv *mpc.Server, out *mpc.Out) {
			frag := srv.Rel("R")
			if frag == nil {
				return
			}
			st := out.Open("P", "y", "v")
			col := frag.MustCol("y")
			for i := 0; i < frag.Len(); i++ {
				row := frag.Row(i)
				st.SendRow(relation.Bucket(relation.Hash64(row[col], seed), p), row)
			}
		})
		if float64(c.Metrics().MaxLoad()) >= 1.3*float64(n)/p {
			over++
		}
	}
	t.Note("Monte-Carlo at IN=%d, p=%d, d*=%d: overload frequency %d/%d (bound guarantees ≤ 5%% — the bound is conservative)",
		n, p, d, over, trials)
	t.Note("slide annotates p=100 → d≈4e6 (reproduced); its p=1000 → 1e4 annotation is inconsistent with its own bound (formula gives ≈3e5)")
	return t
}

// E04Cartesian reproduces slide 28: the grid Cartesian product achieves
// L ≈ 2·sqrt(|R||S|/p) across size ratios, and broadcasting wins when
// one side is tiny.
func E04Cartesian() *Table {
	const p = 16
	t := &Table{
		ID: "E04", Title: "Cartesian product grid load",
		SlideRef: "slide 28",
		Header:   []string{"|R|", "|S|", "grid p1×p2", "optimal L", "measured L", "ratio"},
	}
	for _, sz := range [][2]int{{2000, 2000}, {1000, 4000}, {200, 8000}, {100, 20000}} {
		nr, ns := sz[0], sz[1]
		r := workload.Uniform("R", []string{"x"}, nr, 1<<30, 7)
		s := workload.Uniform("S", []string{"z"}, ns, 1<<30, 8)
		c := mpc.NewCluster(p, 1)
		join2.CartesianProduct(c, r, s, "out")
		p1, p2 := join2.GridShares(nr, ns, p)
		opt := cost.CartesianLoad(float64(nr), float64(ns), p)
		load := float64(c.Metrics().MaxLoad())
		t.AddRow(fmtInt(int64(nr)), fmtInt(int64(ns)),
			fmt.Sprintf("%d×%d", p1, p2), fmtF(opt), fmtF(load), fmtRatio(load, opt))
	}
	t.Note("p = %d; when |R| ≪ |S| the optimal grid degenerates to 1×p — broadcasting R", p)
	return t
}

// E05SkewJoin reproduces slides 29–30: the heavy-hitter-aware join
// achieves L = O(sqrt(OUT/p) + IN/p) where the plain hash join degrades
// to Θ(IN) under extreme skew.
func E05SkewJoin() *Table {
	const p = 16
	t := &Table{
		ID: "E05", Title: "Skew-aware 2-way join vs hash join",
		SlideRef: "slides 29–30",
		Header:   []string{"workload", "OUT", "hash L", "skew L", "bound √(OUT/p)+IN/p"},
	}
	cases := []struct {
		name string
		r, s *relation.Relation
	}{}
	// Uniform baseline.
	ru := workload.Uniform("R", []string{"x", "y"}, 20000, 10000, 1)
	su := workload.Uniform("S", []string{"y", "z"}, 20000, 10000, 2)
	cases = append(cases, struct {
		name string
		r, s *relation.Relation
	}{"uniform", ru, su})
	// Zipf skew.
	rz := workload.Zipf("R", []string{"y", "x"}, 20000, 5000, 1.4, 3).Project("R", "x", "y")
	sz := workload.Zipf("S", []string{"y", "z"}, 20000, 5000, 1.4, 4)
	cases = append(cases, struct {
		name string
		r, s *relation.Relation
	}{"zipf(1.4)", rz, sz})
	// Extreme: one value holds 10% of each side.
	rx := workload.PlantHeavy("R", "y", "x", 18000, 1<<20, []relation.Value{7}, []int{2000}).Project("R", "x", "y")
	sx := workload.PlantHeavy("S", "y", "z", 18000, 1<<21, []relation.Value{7}, []int{2000})
	cases = append(cases, struct {
		name string
		r, s *relation.Relation
	}{"planted heavy", rx, sx})

	for _, tc := range cases {
		in := tc.r.Len() + tc.s.Len()
		outSize := relation.HashJoin("w", tc.r, tc.s).Len()
		ch := mpc.NewCluster(p, 1)
		join2.HashJoin(ch, tc.r, tc.s, "out", 42)
		cs := mpc.NewCluster(p, 1)
		join2.SkewJoin(cs, tc.r, tc.s, "out", 42)
		bound := cost.SkewJoinLoad(float64(in), float64(outSize), p)
		t.AddRow(tc.name, fmtInt(int64(outSize)),
			fmtInt(ch.Metrics().MaxLoad()), fmtInt(cs.Metrics().MaxLoad()), fmtF(bound))
	}
	t.Note("IN = 40000 per case, p = %d; skew join runs 3 rounds (degrees, heavy broadcast, shuffle)", p)
	return t
}

// E06SortJoin reproduces slide 31: the parallel sort join meets the
// same O(√(OUT/p) + IN/p) bound via sorting + boundary fix-up.
func E06SortJoin() *Table {
	const p = 16
	t := &Table{
		ID: "E06", Title: "Parallel sort join",
		SlideRef: "slide 31 (Hu et al. '17)",
		Header:   []string{"workload", "OUT", "sort-join L", "rounds", "bound"},
	}
	type tc struct {
		name string
		r, s *relation.Relation
	}
	cases := []tc{
		{"uniform",
			workload.Uniform("R", []string{"x", "y"}, 20000, 10000, 5),
			workload.Uniform("S", []string{"y", "z"}, 20000, 10000, 6)},
		{"planted heavy",
			workload.PlantHeavy("R", "y", "x", 18000, 1<<20, []relation.Value{7}, []int{2000}).Project("R", "x", "y"),
			workload.PlantHeavy("S", "y", "z", 18000, 1<<21, []relation.Value{7}, []int{2000})},
	}
	for _, c0 := range cases {
		in := c0.r.Len() + c0.s.Len()
		outSize := relation.HashJoin("w", c0.r, c0.s).Len()
		c := mpc.NewCluster(p, 1)
		res := join2.SortJoin(c, c0.r, c0.s, "out", 42)
		bound := cost.SkewJoinLoad(float64(in), float64(outSize), p)
		t.AddRow(c0.name, fmtInt(int64(outSize)),
			fmtInt(c.Metrics().MaxLoad()), fmtInt(int64(res.Rounds)), fmtF(bound))
	}
	t.Note("heavy values are split across servers by the (key, uid) sort and fixed up with per-value grids")
	// Sanity: heavy hitters really exist in case 2.
	hh := stats.JoinHeavyHitters(cases[1].r, cases[1].s, "y", (40000)/p)
	t.Note("planted case has %d heavy hitter(s); max degree %d", len(hh),
		int(math.Max(float64(stats.DegreesOf(cases[1].r, "y").Max()), float64(stats.DegreesOf(cases[1].s, "y").Max()))))
	return t
}
