package experiments

import (
	"fmt"
	"math"
	"strings"

	"mpcquery/internal/cost"
	"mpcquery/internal/fractional"
	"mpcquery/internal/hypercube"
	"mpcquery/internal/hypergraph"
	"mpcquery/internal/mpc"
	"mpcquery/internal/relation"
	"mpcquery/internal/workload"
	"mpcquery/internal/yannakakis"
)

// E07TriangleHC reproduces slides 34–36: one-round HyperCube triangle
// load N/p^{2/3}, its matching lower bound, and the multi-round binary
// join plan baseline.
func E07TriangleHC() *Table {
	const nv, ne = 3000, 30000
	t := &Table{
		ID: "E07", Title: "Triangle query: HyperCube vs binary plan",
		SlideRef: "slides 34–36",
		Header:   []string{"p", "HC L", "N/p^{2/3}", "1-round LB", "HC rounds", "binary L", "binary rounds"},
	}
	q := hypergraph.Triangle()
	for _, p := range []int{8, 27, 64} {
		r, s, u := workload.TriangleInput(nv, ne, 7)
		rels := map[string]*relation.Relation{"R": r, "S": s, "T": u}
		ch := mpc.NewCluster(p, 1)
		resHC, err := hypercube.Run(ch, q, rels, "out", 42, hypercube.LocalGeneric)
		if err != nil {
			panic(err)
		}
		cb := mpc.NewCluster(p, 1)
		resB := yannakakis.IterativeBinaryJoin(cb, q, rels, "out", 42)
		pred := float64(ne) / math.Pow(float64(p), 2.0/3.0)
		lb := cost.TriangleOneRoundLB(float64(ne), p)
		t.AddRow(fmtInt(int64(p)),
			fmtInt(ch.Metrics().MaxLoad()), fmtF(pred), fmtF(lb),
			fmtInt(int64(resHC.Rounds)),
			fmtInt(cb.Metrics().MaxLoad()), fmtInt(int64(resB.Rounds)))
	}
	t.Note("N = %d edges per relation; HC load counts all three atoms, hence ≈ 3·N/p^{2/3} for cubic grids", ne)
	return t
}

// E08UnequalShares reproduces the slide 42–44 table: the optimal load
// is the max over edge packings, and the share grid degenerates when
// relation sizes diverge.
func E08UnequalShares() *Table {
	const p = 64
	q := hypergraph.Triangle()
	t := &Table{
		ID: "E08", Title: "Unequal-size triangle: packings and shares",
		SlideRef: "slides 42–44",
		Header:   []string{"|R|,|S|,|T|", "dominant packing", "LP load", "int shares (x,y,z)", "measured L"},
	}
	for _, sz := range []map[string]int64{
		{"R": 1 << 14, "S": 1 << 14, "T": 1 << 14},
		{"R": 1 << 17, "S": 1 << 9, "T": 1 << 9},
		{"R": 1 << 9, "S": 1 << 15, "T": 1 << 15},
	} {
		sh, err := fractional.OptimalShares(q, sz, p)
		if err != nil {
			panic(err)
		}
		packs := fractional.TopPackings(q, sz, p)
		dom := "-"
		if len(packs) > 0 {
			parts := make([]string, len(packs[0].Weights))
			for i, w := range packs[0].Weights {
				parts[i] = fmt.Sprintf("%.1f", w)
			}
			dom = "(" + strings.Join(parts, ",") + ")"
		}
		// Measure with synthetic data of those sizes.
		rels := map[string]*relation.Relation{
			"R": workload.Uniform("R", []string{"x", "y"}, int(sz["R"]), 1<<20, 1),
			"S": workload.Uniform("S", []string{"y", "z"}, int(sz["S"]), 1<<20, 2),
			"T": workload.Uniform("T", []string{"z", "x"}, int(sz["T"]), 1<<20, 3),
		}
		c := mpc.NewCluster(p, 1)
		pl := hypercube.PlanWithShares(q, sh.Integer, 42)
		hypercube.RunWithPlan(c, pl, rels, "out", hypercube.LocalGeneric)
		t.AddRow(
			fmt.Sprintf("%d,%d,%d", sz["R"], sz["S"], sz["T"]),
			dom, fmtF(sh.FractionalLoad),
			fmt.Sprintf("%v", sh.Integer),
			fmtInt(c.Metrics().MaxLoad()))
	}
	t.Note("p = %d; measured L sums the per-atom loads, so it tracks a small constant times the LP bound", p)
	return t
}

// E09Speedup reproduces slide 45: the speedup of HyperCube degrades to
// p^{1/τ*} = p^{2/3} for triangles as p grows.
func E09Speedup() *Table {
	const nv, ne = 2000, 20000
	q := hypergraph.Triangle()
	t := &Table{
		ID: "E09", Title: "HyperCube speedup on triangles",
		SlideRef: "slides 45, 62",
		Header:   []string{"p", "measured L", "speedup L(1)/L(p)", "ideal p^{2/3}"},
	}
	var base float64
	var xs, measured, ideal []float64
	for _, p := range []int{1, 8, 27, 64, 125} {
		r, s, u := workload.TriangleInput(nv, ne, 9)
		rels := map[string]*relation.Relation{"R": r, "S": s, "T": u}
		c := mpc.NewCluster(p, 1)
		if _, err := hypercube.Run(c, q, rels, "out", 42, hypercube.LocalGeneric); err != nil {
			panic(err)
		}
		load := float64(c.Metrics().MaxLoad())
		if p == 1 {
			base = load
		}
		t.AddRow(fmtInt(int64(p)), fmtF(load), fmtRatio(base, load),
			fmtF(math.Pow(float64(p), 2.0/3.0)))
		xs = append(xs, float64(p))
		measured = append(measured, base/load)
		ideal = append(ideal, math.Pow(float64(p), 2.0/3.0))
	}
	t.Charts = append(t.Charts, &Chart{
		Title:  "slide-45 figure: HyperCube speedup vs p",
		XLabel: "p (log)", YLabel: "speedup (log)",
		LogX: true, LogY: true,
		Series: []Series{
			{Name: "measured L(1)/L(p)", Marker: '*', X: xs, Y: measured},
			{Name: "p^{2/3}", Marker: '.', X: xs, Y: ideal},
		},
	})
	t.Note("τ* = 3/2 for the triangle: doubling speed needs 2^{3/2} ≈ 2.8× more servers")
	return t
}

// E10SkewHC reproduces slides 47–51: the per-pattern residual table and
// the measured load advantage of SkewHC over plain HyperCube on skewed
// triangles.
func E10SkewHC() *Table {
	const p = 64
	q := hypergraph.Triangle()
	// Heavy x hub: R and T confined to one x-slab under plain HC.
	r := relation.New("R", "x", "y")
	s := relation.New("S", "y", "z")
	u := relation.New("T", "z", "x")
	const k = 4096
	for i := relation.Value(0); i < k; i++ {
		r.Append(0, i)
		u.Append(i, 0)
		s.Append(i, (i*13+5)%k)
	}
	rels := map[string]*relation.Relation{"R": r, "S": s, "T": u}

	cp := mpc.NewCluster(p, 1)
	if _, err := hypercube.Run(cp, q, rels, "out", 42, hypercube.LocalGeneric); err != nil {
		panic(err)
	}
	cs := mpc.NewCluster(p, 1)
	res, err := hypercube.RunSkewHC(cs, q, rels, "out", 42, 0, hypercube.LocalGeneric)
	if err != nil {
		panic(err)
	}
	t := &Table{
		ID: "E10", Title: "SkewHC heavy/light residual patterns",
		SlideRef: "slides 47–51",
		Header:   []string{"pattern (heavy vars)", "residual τ*", "shares (x,y,z)", "predicted L"},
	}
	for _, pat := range res.Patterns {
		var hv []string
		for _, v := range q.Vars() {
			if pat.Heavy[v] {
				hv = append(hv, v)
			}
		}
		name := "∅ (all light)"
		if len(hv) > 0 {
			name = strings.Join(hv, ",")
		}
		pred := "-"
		if pat.TauRes > 0 {
			pred = fmt.Sprintf("N/p^{1/%.2g} = %.0f", pat.TauRes,
				float64(k)/math.Pow(float64(p), 1/pat.TauRes))
		}
		t.AddRow(name, fmtF(pat.TauRes), fmt.Sprintf("%v", pat.Plan.Shares), pred)
	}
	t.Note("measured shuffle load: plain HC %d vs SkewHC %d (N = %d, p = %d)",
		cp.Metrics().MaxLoad(), cs.Metrics().MaxLoadOfRound("skewhc:shuffle"), k, p)
	psi, _ := cost.PsiStar(q)
	t.Note("ψ* = %.1f: optimal 1-round skewed load IN/p^{1/ψ*} = %.0f", psi,
		float64(3*k)/math.Pow(float64(p), 1/psi))
	return t
}

// E11OneVsMulti reproduces the summary tables of slides 51–54: τ*, ψ*,
// and ρ* per query, with the implied 1-round and multi-round loads.
func E11OneVsMulti() *Table {
	const in, p = 30000.0, 64
	t := &Table{
		ID: "E11", Title: "1-round vs multi-round load exponents",
		SlideRef: "slides 51–54",
		Header: []string{"query", "τ*", "ψ*", "ρ*",
			"no-skew 1r IN/p^{1/τ*}", "skew 1r IN/p^{1/ψ*}", "multi-round IN/p^{1/ρ*}"},
	}
	for _, q := range []hypergraph.Query{
		hypergraph.Triangle(), hypergraph.TwoWayJoin(), hypergraph.RST(), hypergraph.Difficult(),
	} {
		ep, err := fractional.MaxEdgePacking(q)
		if err != nil {
			panic(err)
		}
		psi, err := cost.PsiStar(q)
		if err != nil {
			panic(err)
		}
		ec, err := fractional.MinEdgeCover(q)
		if err != nil {
			panic(err)
		}
		pf := float64(p)
		t.AddRow(q.Name, fmtF(ep.Tau), fmtF(psi), fmtF(ec.Rho),
			fmtF(in/math.Pow(pf, 1/ep.Tau)),
			fmtF(in/math.Pow(pf, 1/psi)),
			fmtF(in/math.Pow(pf, 1/ec.Rho)))
	}
	t.Note("IN = %.0f, p = %d; for acyclic queries the multi-round no-skew load is IN/p (slide 54)", in, p)
	return t
}

// E12ScalabilityLimit reproduces slide 62: for the path-20 query,
// τ* = 10, so halving the load needs 2^{10} = 1024× more servers.
func E12ScalabilityLimit() *Table {
	const n = 500
	q := hypergraph.Path(20)
	ep, err := fractional.MaxEdgePacking(q)
	if err != nil {
		panic(err)
	}
	t := &Table{
		ID: "E12", Title: "Speedup limit of the path-20 query",
		SlideRef: "slide 62",
		Header:   []string{"p", "measured HC L", "predicted N·#atoms/p^{1/10}"},
	}
	rels := map[string]*relation.Relation{}
	for _, r := range workload.PathInput(20, n) {
		rels[r.Name()] = r
	}
	for _, p := range []int{1, 1024} {
		c := mpc.NewCluster(p, 1)
		if _, err := hypercube.Run(c, q, rels, "out", 42, hypercube.LocalGeneric); err != nil {
			panic(err)
		}
		pred := 20 * float64(n) / math.Pow(float64(p), 1/ep.Tau)
		t.AddRow(fmtInt(int64(p)), fmtInt(c.Metrics().MaxLoad()), fmtF(pred))
	}
	t.Note("τ* = %.0f: 1024× more servers buy only a 2× load reduction", ep.Tau)
	return t
}

// E13IntermediateBlowup reproduces slide 63: iterative binary joins can
// materialize intermediates far larger than IN, while the one-round
// algorithm only ever pays replication.
func E13IntermediateBlowup() *Table {
	const p = 16
	q := hypergraph.Path(3)
	t := &Table{
		ID: "E13", Title: "Binary-join intermediate blowup on path-3",
		SlideRef: "slide 63",
		Header:   []string{"degree d", "IN", "binary max intermediate", "binary L", "HC L", "HC C"},
	}
	for _, d := range []int{2, 8, 32} {
		// Keys 0..K-1, each with d parallel edges at both ends: the
		// first intermediate has K·d² tuples.
		const keys = 40
		r1 := relation.New("R1", "A0", "A1")
		r2 := relation.New("R2", "A1", "A2")
		r3 := relation.New("R3", "A2", "A3")
		for kv := relation.Value(0); kv < keys; kv++ {
			for i := relation.Value(0); i < relation.Value(d); i++ {
				r1.Append(kv*1000+i, kv)
				r3.Append(kv, kv*1000+i)
			}
			r2.Append(kv, kv)
		}
		rels := map[string]*relation.Relation{"R1": r1, "R2": r2, "R3": r3}
		in := r1.Len() + r2.Len() + r3.Len()
		cb := mpc.NewCluster(p, 1)
		resB := yannakakis.IterativeBinaryJoin(cb, q, rels, "out", 42)
		ch := mpc.NewCluster(p, 1)
		if _, err := hypercube.Run(ch, q, rels, "out", 42, hypercube.LocalGeneric); err != nil {
			panic(err)
		}
		t.AddRow(fmtInt(int64(d)), fmtInt(int64(in)),
			fmtInt(int64(resB.MaxIntermediate)), fmtInt(cb.Metrics().MaxLoad()),
			fmtInt(ch.Metrics().MaxLoad()), fmtInt(ch.Metrics().TotalComm()))
	}
	t.Note("OUT = K·d² here, so the blowup is also the output — slide 63's point is that T1 can exceed p·IN, favoring 1-round replication")
	return t
}
