package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Series is one named curve of an ASCII chart.
type Series struct {
	Name   string
	Marker byte
	X, Y   []float64
}

// Chart renders one or more series as a fixed-size ASCII scatter/line
// chart, the medium this repository uses to regenerate the tutorial's
// *figures* (as opposed to its tables). Log-scaled axes suit the
// load/communication curves, which span orders of magnitude.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	LogX   bool
	LogY   bool
	Width  int // plot columns (default 56)
	Height int // plot rows (default 14)
	Series []Series
}

// Render draws the chart.
func (ch *Chart) Render() string {
	w, h := ch.Width, ch.Height
	if w <= 0 {
		w = 56
	}
	if h <= 0 {
		h = 14
	}
	tx := func(v float64) float64 {
		if ch.LogX {
			return math.Log10(math.Max(v, 1e-12))
		}
		return v
	}
	ty := func(v float64) float64 {
		if ch.LogY {
			return math.Log10(math.Max(v, 1e-12))
		}
		return v
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range ch.Series {
		for i := range s.X {
			minX = math.Min(minX, tx(s.X[i]))
			maxX = math.Max(maxX, tx(s.X[i]))
			minY = math.Min(minY, ty(s.Y[i]))
			maxY = math.Max(maxY, ty(s.Y[i]))
		}
	}
	if math.IsInf(minX, 1) {
		return ch.Title + " (no data)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", w))
	}
	for _, s := range ch.Series {
		for i := range s.X {
			cx := int(math.Round((tx(s.X[i]) - minX) / (maxX - minX) * float64(w-1)))
			cy := int(math.Round((ty(s.Y[i]) - minY) / (maxY - minY) * float64(h-1)))
			row := h - 1 - cy
			if row >= 0 && row < h && cx >= 0 && cx < w {
				grid[row][cx] = s.Marker
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", ch.Title)
	yHi, yLo := maxY, minY
	if ch.LogY {
		yHi, yLo = math.Pow(10, maxY), math.Pow(10, minY)
	}
	for i, row := range grid {
		label := "          "
		if i == 0 {
			label = leftPad(fmtAxis(yHi), 10)
		}
		if i == h-1 {
			label = leftPad(fmtAxis(yLo), 10)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(row))
	}
	xHi, xLo := maxX, minX
	if ch.LogX {
		xHi, xLo = math.Pow(10, maxX), math.Pow(10, minX)
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", 10), strings.Repeat("-", w))
	fmt.Fprintf(&b, "%s  %s%s%s\n", strings.Repeat(" ", 10),
		fmtAxis(xLo), strings.Repeat(" ", maxInt(1, w-len(fmtAxis(xLo))-len(fmtAxis(xHi)))), fmtAxis(xHi))
	axes := ch.XLabel
	if ch.YLabel != "" {
		axes = ch.YLabel + " vs " + ch.XLabel
	}
	if axes != "" {
		fmt.Fprintf(&b, "%s  %s\n", strings.Repeat(" ", 10), axes)
	}
	var names []string
	for _, s := range ch.Series {
		names = append(names, fmt.Sprintf("%c = %s", s.Marker, s.Name))
	}
	sort.Strings(names)
	fmt.Fprintf(&b, "%s  legend: %s\n", strings.Repeat(" ", 10), strings.Join(names, ", "))
	return b.String()
}

func fmtAxis(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e6 || (av > 0 && av < 1e-2):
		return fmt.Sprintf("%.1e", v)
	case av >= 100:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2g", v)
	}
}

func leftPad(s string, n int) string {
	if len(s) >= n {
		return s
	}
	return strings.Repeat(" ", n-len(s)) + s
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
