package experiments

import (
	"fmt"
	"time"

	"mpcquery/internal/aggregate"
	"mpcquery/internal/fractional"
	"mpcquery/internal/hypercube"
	"mpcquery/internal/hypergraph"
	"mpcquery/internal/matmul"
	"mpcquery/internal/mpc"
	"mpcquery/internal/relation"
	"mpcquery/internal/sortmpc"
	"mpcquery/internal/workload"
)

// The A-series tables are the ablations DESIGN.md calls out: design
// choices inside our implementations whose impact the slides imply but
// never measure.

func init() {
	All = append(All,
		Experiment{"A01", "HyperCube share rounding: floor vs greedy", A01ShareRounding},
		Experiment{"A02", "Local join algorithm under HyperCube", A02LocalJoin},
		Experiment{"A03", "PSRS splitter selection: regular vs random", A03Splitters},
		Experiment{"A04", "Square-block matmul group size g", A04MatMulGroups},
		Experiment{"A05", "Aggregation combiner on/off", A05Combiner},
		Experiment{"A06", "HL+Semijoins vs SkewHC vs plain HC", A06HLSemijoins},
	)
}

// A01ShareRounding compares the two integer-rounding strategies for
// HyperCube shares on unequal-size triangles: floor rounding can leave
// most of the cluster idle when the fractional optimum sits between
// powers.
func A01ShareRounding() *Table {
	const p = 60 // deliberately not a perfect cube
	q := hypergraph.Triangle()
	t := &Table{
		ID: "A01", Title: "Integer share rounding",
		SlideRef: "DESIGN.md ablation 1 (slide 38's LP + rounding)",
		Header:   []string{"|R|,|S|,|T|", "fractional shares", "floor", "greedy", "floor L", "greedy L"},
	}
	for _, sz := range []map[string]int64{
		{"R": 1 << 14, "S": 1 << 14, "T": 1 << 14},
		{"R": 1 << 15, "S": 1 << 13, "T": 1 << 11},
	} {
		sh, err := fractional.OptimalShares(q, sz, p)
		if err != nil {
			panic(err)
		}
		floor := fractional.RoundSharesFloor(sh.Fractional, p)
		greedy := fractional.RoundSharesGreedy(sh.Fractional, p)
		rels := map[string]*relation.Relation{
			"R": workload.Uniform("R", []string{"x", "y"}, int(sz["R"]), 1<<20, 1),
			"S": workload.Uniform("S", []string{"y", "z"}, int(sz["S"]), 1<<20, 2),
			"T": workload.Uniform("T", []string{"z", "x"}, int(sz["T"]), 1<<20, 3),
		}
		load := func(shares []int) int64 {
			c := mpc.NewCluster(p, 1)
			pl := hypercube.PlanWithShares(q, shares, 42)
			hypercube.RunWithPlan(c, pl, rels, "out", hypercube.LocalGeneric)
			return c.Metrics().MaxLoad()
		}
		t.AddRow(
			fmt.Sprintf("%d,%d,%d", sz["R"], sz["S"], sz["T"]),
			fmt.Sprintf("%.2f %.2f %.2f", sh.Fractional[0], sh.Fractional[1], sh.Fractional[2]),
			fmt.Sprintf("%v", floor), fmt.Sprintf("%v", greedy),
			fmtInt(load(floor)), fmtInt(load(greedy)))
	}
	t.Note("p = %d; greedy rounding uses leftover server budget to shrink the dominant atom's load", p)
	return t
}

// A02LocalJoin compares the three local evaluation strategies under an
// identical HyperCube shuffle: the slide-32 point that the local
// algorithm is orthogonal to the parallel one, quantified.
func A02LocalJoin() *Table {
	const nv, ne, p = 3000, 40000, 8
	rels := func() map[string]*relation.Relation {
		r, s, u := workload.TriangleInput(nv, ne, 31)
		return map[string]*relation.Relation{"R": r, "S": s, "T": u}
	}()
	t := &Table{
		ID: "A02", Title: "Local join algorithm under HyperCube",
		SlideRef: "DESIGN.md ablation 2 (slide 32)",
		Header:   []string{"local algorithm", "output", "local-eval wall time", "shuffle L (identical)"},
	}
	var wantLen int
	for _, spec := range []struct {
		name string
		alg  hypercube.LocalAlg
	}{
		{"generic join (WCO)", hypercube.LocalGeneric},
		{"leapfrog triejoin (WCO)", hypercube.LocalLeapfrog},
		{"binary hash plans", hypercube.LocalBinary},
	} {
		c := mpc.NewCluster(p, 1)
		start := time.Now()
		if _, err := hypercube.Run(c, hypergraph.Triangle(), rels, "out", 42, spec.alg); err != nil {
			panic(err)
		}
		elapsed := time.Since(start)
		outLen := c.TotalLen("out")
		if wantLen == 0 {
			wantLen = outLen
		} else if outLen != wantLen {
			panic("local algorithms disagree")
		}
		t.AddRow(spec.name, fmtInt(int64(outLen)),
			elapsed.Round(time.Millisecond).String(), fmtInt(c.Metrics().MaxLoad()))
	}
	t.Note("N = %d edges, p = %d; wall time includes the (identical) shuffle — differences are local evaluation", ne, p)
	t.Note("binary plans materialize the R⋈S intermediate locally; the WCO algorithms never do")
	return t
}

// A03Splitters compares PSRS's classical regular sampling with the
// random-sampling variant at several sample budgets, measuring
// partition imbalance.
func A03Splitters() *Table {
	const n, p = 200000, 16
	t := &Table{
		ID: "A03", Title: "PSRS splitter selection",
		SlideRef: "DESIGN.md ablation 4 (slide 102)",
		Header:   []string{"strategy", "samples/server", "partition L", "L/(N/p)", "sample-round L"},
	}
	runOne := func(name string, run func(c *mpc.Cluster)) {
		c := mpc.NewCluster(p, 1)
		c.ScatterRoundRobin(workload.Uniform("R", []string{"k", "v"}, n, 1<<30, 7))
		run(c)
		if err := sortmpc.VerifySorted(c, "sorted", []string{"k"}); err != nil {
			panic(err)
		}
		part := c.Metrics().MaxLoadOfRound("sort:partition")
		samp := c.Metrics().MaxLoadOfRound("sort:sample")
		parts := []string{name, "-", fmtInt(part), fmtRatio(float64(part), float64(n)/p), fmtInt(samp)}
		t.Rows = append(t.Rows, parts)
	}
	runOne("regular (p-1 per server)", func(c *mpc.Cluster) {
		sortmpc.PSRS(c, "R", []string{"k"}, "sorted")
	})
	for _, s := range []int{4, 16, 64, 256} {
		s := s
		c := mpc.NewCluster(p, 1)
		c.ScatterRoundRobin(workload.Uniform("R", []string{"k", "v"}, n, 1<<30, 7))
		sortmpc.PSRSRandomSample(c, "R", []string{"k"}, "sorted", s)
		if err := sortmpc.VerifySorted(c, "sorted", []string{"k"}); err != nil {
			panic(err)
		}
		part := c.Metrics().MaxLoadOfRound("sort:partition")
		samp := c.Metrics().MaxLoadOfRound("sort:sample")
		t.AddRow("random", fmtInt(int64(s)), fmtInt(part),
			fmtRatio(float64(part), float64(n)/p), fmtInt(samp))
	}
	t.Note("N = %d, p = %d; more random samples buy balance at the cost of sample-round load", n, p)
	return t
}

// A04MatMulGroups sweeps the square-block group count g at fixed H:
// more groups halve the multiply rounds (slide 119) but add a combine
// round and replicate partial sums.
func A04MatMulGroups() *Table {
	const n, h = 64, 8
	a, b := matmul.Random(n, 8, 5), matmul.Random(n, 8, 6)
	want := matmul.Multiply(a, b)
	t := &Table{
		ID: "A04", Title: "Square-block matmul group count",
		SlideRef: "DESIGN.md ablation 5 (slides 115–121)",
		Header:   []string{"g", "p = g·H²", "rounds", "L", "C", "correct"},
	}
	for _, g := range []int{1, 2, 4, 8} {
		c := mpc.NewCluster(g*h*h, 1)
		res, err := matmul.SquareBlock(c, a, b, h, g)
		if err != nil {
			panic(err)
		}
		t.AddRow(fmtInt(int64(g)), fmtInt(int64(g*h*h)),
			fmtInt(int64(res.Rounds)), fmtInt(c.Metrics().MaxLoad()),
			fmtInt(c.Metrics().TotalComm()), fmt.Sprintf("%v", res.C.Equal(want)))
	}
	t.Note("n = %d, H = %d: g trades processors for rounds at constant per-round load", n, h)
	return t
}

// A05Combiner measures the effect of local pre-aggregation on the
// distributed group-by (the slide-52 workload).
func A05Combiner() *Table {
	const n, p = 100000, 16
	rel := workload.Uniform("sales", []string{"g1", "g2", "v"}, n, 25, 13)
	t := &Table{
		ID: "A05", Title: "Aggregation combiner",
		SlideRef: "DESIGN.md ablation (slide 52 workload)",
		Header:   []string{"combiner", "shuffle L", "total C", "groups"},
	}
	for _, with := range []bool{true, false} {
		c := mpc.NewCluster(p, 1)
		c.ScatterRoundRobin(rel)
		res, err := aggregate.Run(c, aggregate.Spec{
			Rel: "sales", GroupBy: []string{"g1", "g2"}, Fn: relation.Sum,
			AggAttr: "v", OutAttr: "total", OutRel: "agg", Seed: 3, NoCombiner: !with,
		})
		if err != nil {
			panic(err)
		}
		name := "on"
		if !with {
			name = "off"
		}
		t.AddRow(name, fmtInt(c.Metrics().MaxLoad()), fmtInt(c.Metrics().TotalComm()),
			fmtInt(int64(res.Groups)))
	}
	t.Note("N = %d rows into 625 groups, p = %d: the combiner makes communication proportional to groups, not rows", n, p)
	return t
}

// A06HLSemijoins compares the three skew strategies for the triangle on
// a hot-z input: plain HyperCube (degrades), one-round SkewHC, and the
// multi-round HL+Semijoins of slides 58–59.
func A06HLSemijoins() *Table {
	const k, p = 4096, 64
	r := relation.New("R", "x", "y")
	s := relation.New("S", "y", "z")
	u := relation.New("T", "z", "x")
	for i := relation.Value(1); i <= k; i++ {
		s.Append(i, 0) // hot z = 0
		u.Append(0, i)
		r.Append(i, i)
	}
	rels := map[string]*relation.Relation{"R": r, "S": s, "T": u}
	want := relation.GenericJoin("want", []string{"x", "y", "z"},
		r.Rename("R"), s.Rename("S"), u.Rename("T"))
	t := &Table{
		ID: "A06", Title: "Skewed-triangle strategies",
		SlideRef: "slides 46–59",
		Header:   []string{"algorithm", "rounds", "shuffle L", "total C", "correct"},
	}
	addRow := func(name string, c *mpc.Cluster, rounds int, loadRound string) {
		got := c.Gather("out")
		ok := got.EqualAsSets(want) && got.Len() == want.Len()
		t.AddRow(name, fmtInt(int64(rounds)),
			fmtInt(c.Metrics().MaxLoadOfRound(loadRound)),
			fmtInt(c.Metrics().TotalComm()), fmt.Sprintf("%v", ok))
	}
	cp := mpc.NewCluster(p, 1)
	resP, err := hypercube.Run(cp, hypergraph.Triangle(), rels, "out", 42, hypercube.LocalGeneric)
	if err != nil {
		panic(err)
	}
	addRow("plain HyperCube", cp, resP.Rounds, "hypercube:shuffle")
	cs := mpc.NewCluster(p, 1)
	resS, err := hypercube.RunSkewHC(cs, hypergraph.Triangle(), rels, "out", 42, 0, hypercube.LocalGeneric)
	if err != nil {
		panic(err)
	}
	addRow("SkewHC (1-round patterns)", cs, resS.Rounds, "skewhc:shuffle")
	ch := mpc.NewCluster(p, 1)
	resH, err := hypercube.HeavyLightTriangle(ch, rels, "out", 42)
	if err != nil {
		panic(err)
	}
	addRow("HL+Semijoins (multi-round)", ch, resH.Rounds, "hl:shuffle")
	t.Note("N = %d, p = %d, one hot z value; both skew-aware strategies restore the IN/p^{2/3}-class load", k, p)
	return t
}
