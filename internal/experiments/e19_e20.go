package experiments

import (
	"fmt"
	"math"

	"mpcquery/internal/cost"
	"mpcquery/internal/matmul"
	"mpcquery/internal/mpc"
)

// E19MatMul reproduces the slide-122 table: the one-round
// rectangle-block algorithm has C = Θ(n⁴/L), the multi-round
// square-block algorithm C = Θ(n³/√L) with r = Θ(n³/(pL^{3/2})) rounds,
// and the products-per-processor comparison t²n vs (tn)^{3/2}.
func E19MatMul() *Table {
	const n = 64
	a, b := matmul.Random(n, 8, 1), matmul.Random(n, 8, 2)
	want := matmul.Multiply(a, b)
	t := &Table{
		ID: "E19", Title: "MPC matrix multiplication costs",
		SlideRef: "slides 109–122",
		Header:   []string{"algorithm", "p", "L (elems)", "rounds", "C measured", "C formula", "correct"},
	}
	// Rectangle-block across grid sizes.
	for _, k := range []int{2, 4, 8} {
		p := k * k
		c := mpc.NewCluster(p, 1)
		res, err := matmul.RectangleBlock(c, a, b)
		if err != nil {
			panic(err)
		}
		load := float64(c.Metrics().MaxLoad())
		t.AddRow("rectangle 1-round", fmtInt(int64(p)),
			fmtInt(c.Metrics().MaxLoad()), fmtInt(int64(res.Rounds)),
			fmtInt(c.Metrics().TotalComm()), fmtSci(cost.MatMulRectComm(n, load)),
			fmt.Sprintf("%v", res.C.Equal(want)))
	}
	// Square-block across block counts (g = 1).
	for _, h := range []int{2, 4, 8} {
		p := h * h
		c := mpc.NewCluster(p, 1)
		res, err := matmul.SquareBlock(c, a, b, h, 1)
		if err != nil {
			panic(err)
		}
		load := float64(c.Metrics().MaxLoad())
		t.AddRow(fmt.Sprintf("square H=%d", h), fmtInt(int64(p)),
			fmtInt(c.Metrics().MaxLoad()), fmtInt(int64(res.Rounds)),
			fmtInt(c.Metrics().TotalComm()),
			// Exact constant: C = 2Hn² = 2√2·n³/√L with L = 2(n/H)².
			fmtSci(2*math.Sqrt2*cost.MatMulSquareComm(n, load)),
			fmt.Sprintf("%v", res.C.Equal(want)))
	}
	// SQL formulation (slide 108).
	c := mpc.NewCluster(16, 1)
	res, err := matmul.SQLJoinAggregate(c, a, b, 42)
	if err != nil {
		panic(err)
	}
	t.AddRow("SQL join+aggregate", "16",
		fmtInt(c.Metrics().MaxLoad()), fmtInt(int64(res.Rounds)),
		fmtInt(c.Metrics().TotalComm()), "-",
		fmt.Sprintf("%v", res.C.Equal(want)))
	t.Note("n = %d; C counts matrix elements received; every algorithm is verified elementwise against the local reference", n)
	return t
}

// E20CommLoadTradeoff reproduces the slide-126 figure: total
// communication C as a function of per-round load L for the one-round
// (C = 4n⁴/L) and multi-round (C = Θ(n³/√L)) algorithms, with the round
// counts that each load level forces.
func E20CommLoadTradeoff() *Table {
	const n = 64
	a, b := matmul.Random(n, 8, 3), matmul.Random(n, 8, 4)
	t := &Table{
		ID: "E20", Title: "Communication vs load for matmul",
		SlideRef: "slide 126",
		Header: []string{"L (elems)", "rect C (r=1)", "rect formula 4n⁴/L",
			"square C", "square rounds", "square formula 2√2·n³/√L"},
	}
	var rectXs, rectYs, sqXs, sqYs []float64
	// Matched loads: rectangle K and square H with equal L.
	// rect: L = 2(n/K)n; square: L = 2(n/H)² — solve H for each K.
	for _, kh := range [][2]int{{8, 8}, {4, 4}, {2, 2}} {
		k, h := kh[0], kh[1]
		cr := mpc.NewCluster(k*k, 1)
		if _, err := matmul.RectangleBlock(cr, a, b); err != nil {
			panic(err)
		}
		cs := mpc.NewCluster(h*h, 1)
		rs, err := matmul.SquareBlock(cs, a, b, h, 1)
		if err != nil {
			panic(err)
		}
		rectL := float64(cr.Metrics().MaxLoad())
		sqL := float64(cs.Metrics().MaxLoad())
		t.AddRow(fmt.Sprintf("rect %d / sq %d", int(rectL), int(sqL)),
			fmtInt(cr.Metrics().TotalComm()), fmtSci(cost.MatMulRectComm(n, rectL)),
			fmtInt(cs.Metrics().TotalComm()), fmtInt(int64(rs.Rounds)),
			fmtSci(2*math.Sqrt2*cost.MatMulSquareComm(n, sqL)))
		rectXs = append(rectXs, rectL)
		rectYs = append(rectYs, float64(cr.Metrics().TotalComm()))
		sqXs = append(sqXs, sqL)
		sqYs = append(sqYs, float64(cs.Metrics().TotalComm()))
	}
	t.Charts = append(t.Charts, &Chart{
		Title:  "slide-126 figure: total communication C vs load L",
		XLabel: "L (log)", YLabel: "C (log)",
		LogX: true, LogY: true,
		Series: []Series{
			{Name: "rectangle 1-round (C=4n⁴/L)", Marker: 'r', X: rectXs, Y: rectYs},
			{Name: "square multi-round (C=2√2·n³/√L)", Marker: 's', X: sqXs, Y: sqYs},
		},
	})
	t.Note("n = %d: smaller L forces more rounds for the square-block algorithm (the staircase of slide 126)", n)
	return t
}
