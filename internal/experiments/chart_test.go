package experiments

import (
	"strings"
	"testing"
)

func TestChartRenderBasics(t *testing.T) {
	ch := &Chart{
		Title:  "test",
		XLabel: "x",
		YLabel: "y",
		Series: []Series{
			{Name: "a", Marker: '*', X: []float64{1, 2, 3}, Y: []float64{1, 4, 9}},
		},
	}
	out := ch.Render()
	if !strings.Contains(out, "test") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "*") {
		t.Fatal("missing marker")
	}
	if !strings.Contains(out, "legend: * = a") {
		t.Fatal("missing legend")
	}
	// Highest y value should appear on the first plot row.
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[1], "9") {
		t.Fatalf("top axis label missing: %q", lines[1])
	}
}

func TestChartEmpty(t *testing.T) {
	ch := &Chart{Title: "empty"}
	if out := ch.Render(); !strings.Contains(out, "no data") {
		t.Fatalf("empty chart rendering: %q", out)
	}
}

func TestChartLogScales(t *testing.T) {
	ch := &Chart{
		Title: "log",
		LogX:  true, LogY: true,
		Series: []Series{
			{Name: "pow", Marker: 'o', X: []float64{1, 10, 100, 1000}, Y: []float64{1, 10, 100, 1000}},
		},
		Width: 31, Height: 11,
	}
	out := ch.Render()
	// On log-log axes a power law is a straight line: markers should be
	// evenly spaced across columns. Find marker columns.
	var cols []int
	for _, line := range strings.Split(out, "\n") {
		bar := strings.Index(line, "|")
		if bar < 0 {
			continue // title/axis/legend lines
		}
		if idx := strings.IndexByte(line[bar:], 'o'); idx >= 0 {
			cols = append(cols, bar+idx)
		}
	}
	if len(cols) != 4 {
		t.Fatalf("expected 4 marker rows, got %d\n%s", len(cols), out)
	}
	gap1 := cols[1] - cols[0]
	for i := 2; i < len(cols); i++ {
		g := cols[i] - cols[i-1]
		if g < gap1-1 || g > gap1+1 {
			t.Fatalf("log-log power law not straight: gaps %v\n%s", cols, out)
		}
	}
}

func TestChartDegenerateRange(t *testing.T) {
	// A single point (zero range) must not divide by zero.
	ch := &Chart{
		Title:  "point",
		Series: []Series{{Name: "p", Marker: 'x', X: []float64{5}, Y: []float64{5}}},
	}
	if out := ch.Render(); !strings.Contains(out, "x") {
		t.Fatal("single point not rendered")
	}
}

func TestTableWithChartRenders(t *testing.T) {
	tbl := &Table{ID: "T", Title: "t", SlideRef: "s", Header: []string{"a"}}
	tbl.AddRow("1")
	tbl.Charts = append(tbl.Charts, &Chart{
		Title:  "fig",
		Series: []Series{{Name: "s", Marker: '*', X: []float64{1, 2}, Y: []float64{1, 2}}},
	})
	if out := tbl.Render(); !strings.Contains(out, "fig") {
		t.Fatal("chart missing from table rendering")
	}
	md := tbl.Markdown()
	if !strings.Contains(md, "```") || !strings.Contains(md, "fig") {
		t.Fatal("chart missing from markdown rendering")
	}
}

func TestAddRowValidation(t *testing.T) {
	tbl := &Table{Header: []string{"a", "b"}}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on cell count mismatch")
		}
	}()
	tbl.AddRow("only one")
}

func TestByID(t *testing.T) {
	if ByID("E01") == nil || ByID("A06") == nil {
		t.Fatal("known experiments missing")
	}
	if ByID("E99") != nil {
		t.Fatal("unknown experiment found")
	}
}
