package experiments

import (
	"fmt"
	"strings"

	"mpcquery/internal/bigjoin"
	"mpcquery/internal/hypergraph"
	"mpcquery/internal/mpc"
	"mpcquery/internal/relation"
	"mpcquery/internal/workload"
)

func init() {
	All = append(All, Experiment{"A07", "BiGJoin variable-order sensitivity", A07BigJoinOrder})
}

// A07BigJoinOrder measures how the variable elimination order changes
// BiGJoin's binding footprint and load — the distributed analogue of
// the classic worst-case-optimal-join ordering sensitivity. The query
// is the 4-cycle on a dense-ish random graph; different orders pick
// different seed/proposer structures and so ship different binding
// sets. (A power-law graph makes the spread more dramatic but its
// 4-cycle count explodes combinatorially, so the sweep uses a uniform
// graph.)
func A07BigJoinOrder() *Table {
	const p = 16
	q := hypergraph.Cycle(4)
	// Asymmetric sizes make the ordering matter: R1 and R3 are sparse,
	// R2 and R4 dense. Orders seeding at a sparse atom carry small
	// binding sets through the dense ones.
	sizes := map[string]int{"R1": 400, "R2": 4000, "R3": 400, "R4": 4000}
	rels := map[string]*relation.Relation{}
	for i, a := range q.Atoms {
		g := workload.RandomGraph("E", "a", "b", 250, sizes[a.Name], int64(7+i))
		e := relation.New(a.Name, a.Vars...)
		for j := 0; j < g.Len(); j++ {
			e.AppendRow(g.Row(j))
		}
		rels[a.Name] = e
	}
	t := &Table{
		ID: "A07", Title: "BiGJoin variable orders on an asymmetric 4-cycle",
		SlideRef: "slide 97 + WCOJ ordering folklore",
		Header:   []string{"variable order", "rounds", "max bindings", "max L", "total C"},
	}
	var refLen = -1
	for _, order := range [][]string{
		{"A1", "A2", "A3", "A4"},
		{"A1", "A3", "A2", "A4"},
		{"A2", "A4", "A1", "A3"},
	} {
		pl, err := bigjoin.NewPlan(q, order)
		if err != nil {
			panic(err)
		}
		c := mpc.NewCluster(p, 1)
		res := bigjoin.Run(c, pl, rels, "out", 42)
		outLen := c.TotalLen("out")
		if refLen < 0 {
			refLen = outLen
		} else if outLen != refLen {
			panic(fmt.Sprintf("A07: order %v changed the result (%d vs %d)", order, outLen, refLen))
		}
		t.AddRow(strings.Join(order, ","), fmtInt(int64(res.Rounds)),
			fmtInt(int64(res.MaxBindings)), fmtInt(c.Metrics().MaxLoad()),
			fmtInt(c.Metrics().TotalComm()))
	}
	t.Note("p = %d, |R1|=|R3|=400, |R2|=|R4|=4000, OUT = %d; the result is order-independent, the cost is not", p, refLen)
	return t
}
