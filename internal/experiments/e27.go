package experiments

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"mpcquery/internal/service"
	"mpcquery/internal/workload"
)

func init() {
	All = append(All,
		Experiment{"E27", "Query service throughput: plan cache and admission under tenant mixes", E27ServiceThroughput},
	)
}

// E27ServiceThroughput drives the in-process multi-tenant query service
// (the same stack cmd/mpcserve exposes over HTTP) with concurrent
// workers and measures sustained QPS, latency percentiles, and the plan
// cache hit rate across workload mixes. The cache-hot rows amortize
// parsing + planning to a lookup; the cache-cold row pays the full
// frontend on every request (every query a fresh shape); the recursive
// row is never cached, so it prices the fixpoint itself. All rows run
// behind the same admission controller, whose in-flight high-water mark
// is asserted against its bound, never merely trusted.
func E27ServiceThroughput() *Table {
	const (
		p        = 4
		n        = 400
		requests = 300
		workers  = 8
		inflight = 4
	)
	t := &Table{
		ID: "E27", Title: "mpcserve sustained throughput by workload mix",
		SlideRef: "multi-tenant serving of the paper's algorithms (methodology in EXPERIMENTS.md)",
		Header:   []string{"workload", "requests", "QPS", "p50 µs", "p99 µs", "cache hit rate"},
	}

	// Cold mix: every request a structurally fresh shape (chain length
	// and head permutation vary), so nothing ever hits.
	coldShapes := make([]string, 16)
	for i := range coldShapes {
		switch i % 4 {
		case 0:
			coldShapes[i] = fmt.Sprintf("q%d(x, y, z) :- R(x, y), S(y, z).", i)
		case 1:
			coldShapes[i] = fmt.Sprintf("q%d(z, y, x) :- R(x, y), S(y, z).", i)
		case 2:
			coldShapes[i] = fmt.Sprintf("q%d(y, x, z) :- R(x, y), S(y, z).", i)
		default:
			coldShapes[i] = fmt.Sprintf("q%d(x, z, y) :- R(x, y), S(y, z).", i)
		}
	}
	mixes := []struct {
		name   string
		shapes []string
		// distinct counts how many plan-cache keys the mix produces; -1
		// means the mix is uncacheable (recursive).
		distinct int
	}{
		{"hot: one join shape", []string{"q(x, y, z) :- R(x, y), S(y, z)."}, 1},
		{"hot: join+triangle+aggregate", []string{
			"q(x, y, z) :- R(x, y), S(y, z).",
			"tri(x, y, z) :- R(x, y), S(y, z), T(z, x).",
			"agg(x, sum(z)) :- R(x, y), S(y, z).",
		}, 3},
		// Predicate names normalize away, so the 16 texts collapse to 4
		// keys — one per head permutation (see the table note).
		{"cool: head-permuted shapes", coldShapes, 4},
		{"uncached: recursive tc", []string{"tc(x, y) :- E(x, y).\ntc(x, z) :- tc(x, y), E(y, z)."}, -1},
	}

	for _, mix := range mixes {
		s := service.New(service.Config{
			P: p, MaxInflight: inflight, MaxQueue: workers * 2,
			QueueTimeout: 5 * time.Second, MaxResultRows: 10,
		})
		s.Register(workload.Uniform("R", []string{"a", "b"}, n, n/2, 1))
		s.Register(workload.Uniform("S", []string{"a", "b"}, n, n/2, 2))
		s.Register(workload.Uniform("T", []string{"a", "b"}, n, n/2, 3))
		s.Register(workload.RandomGraph("E", "s", "d", 60, 200, 4))

		var mu sync.Mutex
		lat := make([]time.Duration, 0, requests)
		var wg sync.WaitGroup
		jobs := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					q := mix.shapes[i%len(mix.shapes)]
					t0 := time.Now()
					if _, err := s.Do(service.Request{Tenant: fmt.Sprintf("t%d", i%3), Query: q}); err != nil {
						panic(fmt.Sprintf("E27 %s: %v", mix.name, err))
					}
					d := time.Since(t0)
					mu.Lock()
					lat = append(lat, d)
					mu.Unlock()
				}
			}()
		}
		start := time.Now()
		for i := 0; i < requests; i++ {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
		elapsed := time.Since(start)

		m := s.Snapshot()
		if m.InflightHighWater > inflight {
			panic(fmt.Sprintf("E27 %s: admission bound violated: %d > %d", mix.name, m.InflightHighWater, inflight))
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		hitRate := "n/a"
		if total := m.PlanCache.Hits + m.PlanCache.Misses; total > 0 {
			hitRate = fmt.Sprintf("%.2f", float64(m.PlanCache.Hits)/float64(total))
		}
		t.AddRow(mix.name, fmtInt(requests),
			fmtInt(int64(float64(requests)/elapsed.Seconds())),
			fmtInt(lat[len(lat)/2].Microseconds()),
			fmtInt(lat[len(lat)*99/100].Microseconds()),
			hitRate)
	}
	t.Note("p = %d per query, %d concurrent workers, MaxInflight = %d (high-water asserted ≤ bound)", p, workers, inflight)
	t.Note("plan-cache keys normalize variable and predicate names, so the head-permuted mix")
	t.Note("collapses 16 query texts to 4 keys — renaming alone cannot defeat the cache")
	t.Note("absolute QPS is machine-dependent; the ordering hot > cool > recursive is not")
	return t
}
