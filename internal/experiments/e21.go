package experiments

import (
	"fmt"

	"mpcquery/internal/matmul"
	"mpcquery/internal/mpc"
)

func init() {
	All = append(All, Experiment{"E21", "Sparse and non-square matrix multiplication", E21SparseMatMul})
}

// E21SparseMatMul covers the slide-127 extensions: non-square products
// and sparse products via the relational formulation, whose
// communication scales with the number of non-zeros instead of the
// dense dimensions.
func E21SparseMatMul() *Table {
	t := &Table{
		ID: "E21", Title: "Sparse / non-square MM via the SQL formulation",
		SlideRef: "slides 108, 127",
		Header:   []string{"shape", "nnz(A)+nnz(B)", "rounds", "L", "total C", "dense elements", "correct"},
	}
	type caseSpec struct {
		name string
		a, b *matmul.Rect
	}
	cases := []caseSpec{
		{"square dense 96×96", matmul.RandomRect(96, 96, 6, 1), matmul.RandomRect(96, 96, 6, 2)},
		{"rect dense 64×128 · 128×32", matmul.RandomRect(64, 128, 6, 3), matmul.RandomRect(128, 32, 6, 4)},
		{"square sparse 1% of 256²", matmul.RandomSparseRect(256, 256, 655, 9, 5), matmul.RandomSparseRect(256, 256, 655, 9, 6)},
		{"square sparse 10% of 256²", matmul.RandomSparseRect(256, 256, 6553, 9, 7), matmul.RandomSparseRect(256, 256, 6553, 9, 8)},
	}
	for _, cs := range cases {
		want := matmul.MultiplyRect(cs.a, cs.b)
		c := mpc.NewCluster(16, 1)
		got, rounds, err := matmul.SparseSQLMultiply(c, cs.a, cs.b, 42)
		if err != nil {
			panic(err)
		}
		dense := cs.a.Rows*cs.a.Cols + cs.b.Rows*cs.b.Cols
		t.AddRow(cs.name,
			fmtInt(int64(cs.a.NNZ()+cs.b.NNZ())),
			fmtInt(int64(rounds)), fmtInt(c.Metrics().MaxLoad()),
			fmtInt(c.Metrics().TotalComm()), fmtInt(int64(dense)),
			fmt.Sprintf("%v", got.EqualRect(want)))
	}
	t.Note("p = 16; at 1%% density the join communicates ~1%% of what a dense layout would ship, plus output-sized partial sums")
	return t
}
