// Package fractional computes the hypergraph LP quantities the MPC join
// theory is built on: the fractional edge packing number τ* (governing
// the skew-free one-round load IN/p^{1/τ*}, slide 40), the fractional
// edge cover number ρ* (governing the AGM output bound and multi-round
// lower bounds, slide 55), fractional vertex covers (the LP dual of
// packings), and the HyperCube share optimization (slide 38).
package fractional

import (
	"fmt"
	"math"
	"sort"

	"mpcquery/internal/hypergraph"
	"mpcquery/internal/lp"
)

// EdgePacking holds an optimal fractional edge packing: one weight per
// atom, in query atom order, with Σ_{e∋v} u_e ≤ 1 for every variable v.
// DualCover is the complementary optimal fractional *vertex cover*
// (one weight per variable, in q.Vars() order) recovered from the LP
// duals — by strong duality its total weight also equals τ* (slide 39),
// so the pair is a self-certifying optimality witness.
type EdgePacking struct {
	Weights   []float64
	Tau       float64 // τ* = Σ weights
	DualCover []float64
}

// MaxEdgePacking solves the fractional edge packing LP for q.
func MaxEdgePacking(q hypergraph.Query) (*EdgePacking, error) {
	m := len(q.Atoms)
	obj := make([]float64, m)
	for i := range obj {
		obj[i] = 1
	}
	p := lp.NewMaximize(obj)
	for _, v := range q.Vars() {
		row := make([]float64, m)
		for i, a := range q.Atoms {
			if a.HasVar(v) {
				row[i] = 1
			}
		}
		p.AddConstraint(row, lp.LE, 1)
	}
	sol, err := p.Solve()
	if err != nil {
		return nil, fmt.Errorf("edge packing LP for %s: %w", q.Name, err)
	}
	return &EdgePacking{Weights: sol.X, Tau: sol.Objective, DualCover: sol.Duals}, nil
}

// EdgeCover holds an optimal fractional edge cover: one weight per atom
// with Σ_{e∋v} w_e ≥ 1 for every variable v.
type EdgeCover struct {
	Weights []float64
	Rho     float64 // ρ* = Σ weights
}

// MinEdgeCover solves the fractional edge cover LP for q. Every
// variable must occur in at least one atom (guaranteed by construction
// of Query), so the LP is always feasible.
func MinEdgeCover(q hypergraph.Query) (*EdgeCover, error) {
	m := len(q.Atoms)
	obj := make([]float64, m)
	for i := range obj {
		obj[i] = 1
	}
	p := lp.NewMinimize(obj)
	for _, v := range q.Vars() {
		row := make([]float64, m)
		for i, a := range q.Atoms {
			if a.HasVar(v) {
				row[i] = 1
			}
		}
		p.AddConstraint(row, lp.GE, 1)
	}
	sol, err := p.Solve()
	if err != nil {
		return nil, fmt.Errorf("edge cover LP for %s: %w", q.Name, err)
	}
	return &EdgeCover{Weights: sol.X, Rho: sol.Objective}, nil
}

// VertexCover holds an optimal fractional vertex cover: one weight per
// variable (in q.Vars() order) with Σ_{v∈e} w_v ≥ 1 for every atom e.
// By LP duality its value equals τ* (slide 39); tests exploit this.
type VertexCover struct {
	Vars    []string
	Weights []float64
	Value   float64
}

// MinVertexCover solves the fractional vertex cover LP for q.
func MinVertexCover(q hypergraph.Query) (*VertexCover, error) {
	vars := q.Vars()
	obj := make([]float64, len(vars))
	for i := range obj {
		obj[i] = 1
	}
	p := lp.NewMinimize(obj)
	for _, a := range q.Atoms {
		row := make([]float64, len(vars))
		for i, v := range vars {
			if a.HasVar(v) {
				row[i] = 1
			}
		}
		p.AddConstraint(row, lp.GE, 1)
	}
	sol, err := p.Solve()
	if err != nil {
		return nil, fmt.Errorf("vertex cover LP for %s: %w", q.Name, err)
	}
	return &VertexCover{Vars: vars, Weights: sol.X, Value: sol.Objective}, nil
}

// AGMBound returns the AGM bound on the output size of q for the given
// relation sizes (slide 55): min over fractional edge covers w of
// Π_j |S_j|^{w_j}. sizes maps atom name to cardinality; all atoms must
// be present and positive.
func AGMBound(q hypergraph.Query, sizes map[string]int64) (float64, error) {
	m := len(q.Atoms)
	obj := make([]float64, m)
	for i, a := range q.Atoms {
		n, ok := sizes[a.Name]
		if !ok || n <= 0 {
			return 0, fmt.Errorf("AGM bound: missing or non-positive size for atom %s", a.Name)
		}
		obj[i] = math.Log(float64(n))
	}
	p := lp.NewMinimize(obj)
	for _, v := range q.Vars() {
		row := make([]float64, m)
		for i, a := range q.Atoms {
			if a.HasVar(v) {
				row[i] = 1
			}
		}
		p.AddConstraint(row, lp.GE, 1)
	}
	sol, err := p.Solve()
	if err != nil {
		return 0, fmt.Errorf("AGM LP for %s: %w", q.Name, err)
	}
	return math.Exp(sol.Objective), nil
}

// PackingLoad evaluates the load lower-bound expression of one edge
// packing u for the given sizes and server count (slide 40):
// (Π_j |S_j|^{u_j} / p)^{1/Σ u_j}. A zero packing yields load 0.
func PackingLoad(q hypergraph.Query, sizes map[string]int64, u []float64, p int) float64 {
	sum := 0.0
	logProd := 0.0
	for i, a := range q.Atoms {
		sum += u[i]
		if u[i] > 0 {
			logProd += u[i] * math.Log(float64(sizes[a.Name]))
		}
	}
	if sum <= 1e-12 {
		return 0
	}
	return math.Exp((logProd - math.Log(float64(p))) / sum)
}

// Shares is an optimized HyperCube share assignment.
type Shares struct {
	Vars       []string  // variable order (q.Vars())
	Exponents  []float64 // fractional share exponents e_v with Σ e_v ≤ 1; p_v = p^{e_v}
	Fractional []float64 // fractional shares p^{e_v}
	Integer    []int     // integer shares, Π ≤ p
	// PredictedLoad is the skew-free per-atom maximum expected load
	// max_j |S_j| / Π_{v ∈ S_j} p_v using the *integer* shares.
	PredictedLoad float64
	// FractionalLoad is the same using fractional shares: the LP
	// optimum, equal by duality to the max over edge packings.
	FractionalLoad float64
}

// OptimalShares solves the share-optimization LP (slide 38): choose
// exponents e_v ≥ 0 with Σ e_v ≤ 1 minimizing
// max_j log|S_j| − (Σ_{v∈S_j} e_v)·log p, then rounds the resulting
// fractional shares p^{e_v} to integers with product ≤ p.
func OptimalShares(q hypergraph.Query, sizes map[string]int64, p int) (*Shares, error) {
	if p < 1 {
		return nil, fmt.Errorf("OptimalShares: p = %d", p)
	}
	vars := q.Vars()
	k := len(vars)
	logp := math.Log(float64(p))
	// Variables: e_0..e_{k-1}, t+ , t-  (t = t+ - t- is the max log-load).
	obj := make([]float64, k+2)
	obj[k] = 1
	obj[k+1] = -1
	prob := lp.NewMinimize(obj)
	// Σ e_v ≤ 1.
	row := make([]float64, k+2)
	for i := 0; i < k; i++ {
		row[i] = 1
	}
	prob.AddConstraint(row, lp.LE, 1)
	// For each atom: t ≥ log|S_j| − logp·Σ_{v∈S_j} e_v, i.e.
	// logp·Σ e_v + t+ − t− ≥ log|S_j|.
	for _, a := range q.Atoms {
		n, ok := sizes[a.Name]
		if !ok || n <= 0 {
			return nil, fmt.Errorf("OptimalShares: missing or non-positive size for atom %s", a.Name)
		}
		row := make([]float64, k+2)
		for i, v := range vars {
			if a.HasVar(v) {
				row[i] = logp
			}
		}
		row[k] = 1
		row[k+1] = -1
		prob.AddConstraint(row, lp.GE, math.Log(float64(n)))
	}
	sol, err := prob.Solve()
	if err != nil {
		return nil, fmt.Errorf("share LP for %s: %w", q.Name, err)
	}
	exp := sol.X[:k]
	frac := make([]float64, k)
	for i := range frac {
		frac[i] = math.Pow(float64(p), exp[i])
	}
	ints := roundShares(frac, p)
	return &Shares{
		Vars:           vars,
		Exponents:      append([]float64(nil), exp...),
		Fractional:     frac,
		Integer:        ints,
		PredictedLoad:  maxAtomLoad(q, sizes, vars, toFloats(ints)),
		FractionalLoad: math.Exp(sol.Objective),
	}, nil
}

func toFloats(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// maxAtomLoad computes max_j |S_j| / Π_{v∈S_j} p_v.
func maxAtomLoad(q hypergraph.Query, sizes map[string]int64, vars []string, shares []float64) float64 {
	load := 0.0
	for _, a := range q.Atoms {
		denom := 1.0
		for i, v := range vars {
			if a.HasVar(v) {
				denom *= shares[i]
			}
		}
		if l := float64(sizes[a.Name]) / denom; l > load {
			load = l
		}
	}
	return load
}

// RoundSharesFloor is the naive integer rounding: each fractional share
// is floored (clamped to ≥ 1). It never exceeds p but can leave many
// servers idle — the ablation baseline for the greedy rounding used by
// OptimalShares.
func RoundSharesFloor(frac []float64, p int) []int {
	ints := make([]int, len(frac))
	prod := 1
	for i, f := range frac {
		ints[i] = int(math.Floor(f + 1e-9))
		if ints[i] < 1 {
			ints[i] = 1
		}
		prod *= ints[i]
	}
	for prod > p {
		big := 0
		for i := range ints {
			if ints[i] > ints[big] {
				big = i
			}
		}
		if ints[big] == 1 {
			break
		}
		prod = prod / ints[big]
		ints[big]--
		prod *= ints[big]
	}
	return ints
}

// RoundSharesGreedy converts fractional shares to integers ≥ 1 whose
// product is ≤ p: floors first, then greedily increments the share with
// the largest deficit while the product stays within p — the standard
// HyperCube rounding heuristic (what OptimalShares uses).
func RoundSharesGreedy(frac []float64, p int) []int {
	return roundShares(frac, p)
}

func roundShares(frac []float64, p int) []int {
	k := len(frac)
	ints := make([]int, k)
	prod := 1
	for i, f := range frac {
		ints[i] = int(math.Floor(f + 1e-9))
		if ints[i] < 1 {
			ints[i] = 1
		}
		prod *= ints[i]
	}
	// Floor rounding can still overflow p when many floors round a value
	// like 2.999→2 but the true product was close to p... it cannot:
	// floors only shrink the product, and Π frac ≤ p. Guard anyway for
	// numeric drift.
	for prod > p {
		// Shrink the largest share.
		big := 0
		for i := range ints {
			if ints[i] > ints[big] {
				big = i
			}
		}
		if ints[big] == 1 {
			break
		}
		prod = prod / ints[big]
		ints[big]--
		prod *= ints[big]
	}
	// Greedy growth: repeatedly bump the share with the largest deficit
	// frac[i]/ints[i] while the product stays ≤ p.
	for {
		best, bestGain := -1, 1.0
		for i := range ints {
			if prod/ints[i]*(ints[i]+1) > p {
				continue
			}
			gain := frac[i] / float64(ints[i])
			if gain > bestGain+1e-12 {
				best, bestGain = i, gain
			}
		}
		if best < 0 {
			break
		}
		prod = prod / ints[best] * (ints[best] + 1)
		ints[best]++
	}
	return ints
}

// TopPackings enumerates the vertices of the edge-packing polytope that
// the slide-42 table shows for the triangle: the all-|supp| packings
// obtained by restricting to each subset of atoms and solving the LP
// with the others forced to zero. It returns each packing with its
// PackingLoad, sorted by decreasing load. Intended for small queries.
func TopPackings(q hypergraph.Query, sizes map[string]int64, p int) []PackingRow {
	m := len(q.Atoms)
	if m > 12 {
		panic("fractional: TopPackings only supports small queries")
	}
	var rows []PackingRow
	for mask := 0; mask < 1<<m; mask++ {
		u, err := maxPackingOnSupport(q, mask)
		if err != nil {
			continue
		}
		load := PackingLoad(q, sizes, u, p)
		rows = append(rows, PackingRow{Weights: u, Load: load})
	}
	sort.SliceStable(rows, func(a, b int) bool { return rows[a].Load > rows[b].Load })
	return dedupRows(rows)
}

// PackingRow pairs an edge packing with its load bound.
type PackingRow struct {
	Weights []float64
	Load    float64
}

func maxPackingOnSupport(q hypergraph.Query, mask int) ([]float64, error) {
	m := len(q.Atoms)
	obj := make([]float64, m)
	for i := 0; i < m; i++ {
		if mask&(1<<i) != 0 {
			obj[i] = 1
		}
	}
	p := lp.NewMaximize(obj)
	for _, v := range q.Vars() {
		row := make([]float64, m)
		for i, a := range q.Atoms {
			if a.HasVar(v) {
				row[i] = 1
			}
		}
		p.AddConstraint(row, lp.LE, 1)
	}
	for i := 0; i < m; i++ {
		if mask&(1<<i) == 0 {
			row := make([]float64, m)
			row[i] = 1
			p.AddConstraint(row, lp.EQ, 0)
		}
	}
	sol, err := p.Solve()
	if err != nil {
		return nil, err
	}
	return sol.X, nil
}

func dedupRows(rows []PackingRow) []PackingRow {
	var out []PackingRow
	for _, r := range rows {
		dup := false
		for _, o := range out {
			same := true
			for i := range r.Weights {
				if math.Abs(r.Weights[i]-o.Weights[i]) > 1e-6 {
					same = false
					break
				}
			}
			if same {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, r)
		}
	}
	return out
}
