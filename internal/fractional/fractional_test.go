package fractional

import (
	"math"
	"testing"

	"mpcquery/internal/hypergraph"
)

func approx(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s = %g, want %g (±%g)", what, got, want, tol)
	}
}

// Slide 51 summary table: τ* for the standard queries.
func TestTauStarStandardQueries(t *testing.T) {
	cases := []struct {
		q   hypergraph.Query
		tau float64
	}{
		{hypergraph.Triangle(), 1.5}, // slide 41
		{hypergraph.TwoWayJoin(), 1}, // slide 41
		{hypergraph.RST(), 2},        // slide 53
		{hypergraph.Path(20), 10},    // slide 62: τ* = 10
		{hypergraph.Difficult(), 2},  // slide 61
		{hypergraph.Cycle(5), 2.5},   // odd cycle: n/2
		{hypergraph.Star(4), 1},      // one center: any two atoms share A0… packing ≤ 1? see below
		{hypergraph.CartesianProduct(), 2},
	}
	for _, tc := range cases {
		ep, err := MaxEdgePacking(tc.q)
		if err != nil {
			t.Fatalf("%s: %v", tc.q.Name, err)
		}
		approx(t, ep.Tau, tc.tau, 1e-6, tc.q.Name+" τ*")
	}
}

// Star(n) packing: every atom contains A0, so Σu ≤ 1 from A0's
// constraint; τ* = 1. Verify the constraint really binds.
func TestStarPackingBindsAtCenter(t *testing.T) {
	ep, err := MaxEdgePacking(hypergraph.Star(6))
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, u := range ep.Weights {
		sum += u
	}
	approx(t, sum, 1, 1e-6, "Σu at center")
}

// Slide 54 table: ρ* for the standard queries.
func TestRhoStarStandardQueries(t *testing.T) {
	cases := []struct {
		q   hypergraph.Query
		rho float64
	}{
		{hypergraph.Triangle(), 1.5},
		{hypergraph.TwoWayJoin(), 1}, // hmm: cover x,y,z with R,S: need both? R covers x,y; S covers y,z; ρ* = ?
		{hypergraph.RST(), 1},
		{hypergraph.Difficult(), 3}, // slide 61: ψ* = 3 = ρ*
		{hypergraph.CartesianProduct(), 2},
	}
	// TwoWayJoin needs R for x and S for z: ρ* = 2.
	cases[1].rho = 2
	// RST: S(x,y) alone covers both vars: ρ* = 1.
	for _, tc := range cases {
		ec, err := MinEdgeCover(tc.q)
		if err != nil {
			t.Fatalf("%s: %v", tc.q.Name, err)
		}
		approx(t, ec.Rho, tc.rho, 1e-6, tc.q.Name+" ρ*")
	}
}

// LP duality (slide 39): min fractional vertex cover = max fractional
// edge packing, for every query we ship.
func TestPackingVertexCoverDuality(t *testing.T) {
	queries := []hypergraph.Query{
		hypergraph.Triangle(), hypergraph.TwoWayJoin(), hypergraph.RST(),
		hypergraph.Path(6), hypergraph.Star(5), hypergraph.Cycle(6),
		hypergraph.Difficult(), hypergraph.SlideTree(),
	}
	for _, q := range queries {
		ep, err := MaxEdgePacking(q)
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		vc, err := MinVertexCover(q)
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		approx(t, vc.Value, ep.Tau, 1e-6, q.Name+" duality τ* = vc*")
	}
}

// For queries whose atoms all have arity ≥ 2 (loopless hypergraphs),
// τ* ≤ ρ*: a packing weights each vertex ≤ 1 while a cover weights each
// ≥ 1. Note this fails with unary atoms: RST has τ* = 2 > ρ* = 1, which
// TestRhoStarStandardQueries pins down separately.
func TestPackingLECover(t *testing.T) {
	queries := []hypergraph.Query{
		hypergraph.Triangle(), hypergraph.TwoWayJoin(),
		hypergraph.Path(9), hypergraph.Star(7), hypergraph.Cycle(7),
		hypergraph.Difficult(),
	}
	for _, q := range queries {
		ep, _ := MaxEdgePacking(q)
		ec, _ := MinEdgeCover(q)
		if ep.Tau > ec.Rho+1e-9 {
			t.Errorf("%s: τ* = %g > ρ* = %g", q.Name, ep.Tau, ec.Rho)
		}
	}
}

func TestAGMBoundTriangle(t *testing.T) {
	q := hypergraph.Triangle()
	sizes := map[string]int64{"R": 1000, "S": 1000, "T": 1000}
	b, err := AGMBound(q, sizes)
	if err != nil {
		t.Fatal(err)
	}
	// AGM for triangle = N^{3/2}.
	approx(t, b, math.Pow(1000, 1.5), 1, "AGM(triangle)")
}

func TestAGMBoundRST(t *testing.T) {
	// RST: ρ* = 1 (S covers everything): AGM = |S|.
	q := hypergraph.RST()
	b, err := AGMBound(q, map[string]int64{"R": 500, "S": 100, "T": 500})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, b, 100, 1e-6, "AGM(RST)")
}

func TestAGMBoundMissingSize(t *testing.T) {
	if _, err := AGMBound(hypergraph.Triangle(), map[string]int64{"R": 10}); err == nil {
		t.Fatal("expected error for missing size")
	}
}

func TestAGMBoundIsUpperBound(t *testing.T) {
	// A concrete instance can't beat AGM: complete bipartite-ish edges.
	q := hypergraph.TwoWayJoin()
	// |R|=|S|=k² (full cross on y=0), OUT = k²·k² / ... build R(x,y):
	// x∈[k²], y=0; S(y,z): y=0, z∈[k²]: OUT = k⁴ = |R|·|S| — matches AGM
	// for two-way join with cover (1,1).
	b, err := AGMBound(q, map[string]int64{"R": 16, "S": 16})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, b, 256, 1e-6, "AGM(join2)")
}

func TestOptimalSharesEqualTriangle(t *testing.T) {
	q := hypergraph.Triangle()
	N := int64(1 << 12)
	p := 64
	sh, err := OptimalShares(q, map[string]int64{"R": N, "S": N, "T": N}, p)
	if err != nil {
		t.Fatal(err)
	}
	// Symmetric optimum: each share p^{1/3} = 4, load N/p^{2/3} = N/16.
	for i, s := range sh.Integer {
		if s != 4 {
			t.Fatalf("share %s = %d, want 4 (all %v)", sh.Vars[i], s, sh.Integer)
		}
	}
	approx(t, sh.FractionalLoad, float64(N)/16, 1e-3, "fractional load")
	approx(t, sh.PredictedLoad, float64(N)/16, 1e-3, "integer-share load")
}

func TestOptimalSharesUnequalTriangle(t *testing.T) {
	// Slide 44, row (u_R, u_S, u_T) = (1,0,0): when R(x,y) dominates, the
	// optimal grid degenerates to p_z = 1 (z appears only in the small
	// relations) and the load is |R|/p.
	q := hypergraph.Triangle()
	sizes := map[string]int64{"R": 1 << 20, "S": 100, "T": 100}
	p := 64
	sh, err := OptimalShares(q, sizes, p)
	if err != nil {
		t.Fatal(err)
	}
	zi := -1
	for i, v := range sh.Vars {
		if v == "z" {
			zi = i
		}
	}
	if sh.Integer[zi] != 1 {
		t.Fatalf("z share = %d, want 1 (shares %v for vars %v)", sh.Integer[zi], sh.Integer, sh.Vars)
	}
	approx(t, sh.FractionalLoad, float64(sizes["R"])/float64(p), 1e-2*sh.FractionalLoad, "load = |R|/p")

	// Converse regime (slide 35 geometry): when R is tiny and S, T are
	// huge, all servers go to the z share and the load is the packing
	// bound sqrt(|S||T|)/p.
	sizes2 := map[string]int64{"R": 100, "S": 1 << 20, "T": 1 << 20}
	sh2, err := OptimalShares(q, sizes2, p)
	if err != nil {
		t.Fatal(err)
	}
	if sh2.Integer[zi] != p {
		t.Fatalf("z share = %d, want %d (shares %v)", sh2.Integer[zi], p, sh2.Integer)
	}
	approx(t, sh2.FractionalLoad, math.Sqrt(float64(sizes2["S"])*float64(sizes2["T"]))/float64(p), 1e-2*sh2.FractionalLoad, "load = sqrt(|S||T|)/p")
}

// Duality check (slide 40): the share LP optimum equals the max over
// fractional edge packings of (Π|S_j|^{u_j}/p)^{1/Σu}.
func TestShareLPEqualsMaxPacking(t *testing.T) {
	for _, tc := range []struct {
		q     hypergraph.Query
		sizes map[string]int64
	}{
		{hypergraph.Triangle(), map[string]int64{"R": 1 << 16, "S": 1 << 16, "T": 1 << 16}},
		{hypergraph.Triangle(), map[string]int64{"R": 1 << 10, "S": 1 << 18, "T": 1 << 14}},
		{hypergraph.TwoWayJoin(), map[string]int64{"R": 1 << 15, "S": 1 << 12}},
		{hypergraph.RST(), map[string]int64{"R": 1 << 12, "S": 1 << 16, "T": 1 << 12}},
	} {
		p := 64
		sh, err := OptimalShares(tc.q, tc.sizes, p)
		if err != nil {
			t.Fatalf("%s: %v", tc.q.Name, err)
		}
		best := 0.0
		for _, row := range TopPackings(tc.q, tc.sizes, p) {
			if row.Load > best {
				best = row.Load
			}
		}
		if math.Abs(sh.FractionalLoad-best) > 1e-3*best {
			t.Errorf("%s: share LP load %g != max packing load %g", tc.q.Name, sh.FractionalLoad, best)
		}
	}
}

func TestTopPackingsTriangleTable(t *testing.T) {
	// Slide 42-44 table: for equal sizes the (1/2,1/2,1/2) packing
	// dominates with (|R||S||T|)^{1/3}/p^{2/3}.
	q := hypergraph.Triangle()
	N := int64(1 << 18)
	p := 64
	rows := TopPackings(q, map[string]int64{"R": N, "S": N, "T": N}, p)
	if len(rows) == 0 {
		t.Fatal("no packings")
	}
	top := rows[0]
	approx(t, top.Load, float64(N)/math.Pow(float64(p), 2.0/3.0), 1, "top packing load")
	for _, w := range top.Weights {
		approx(t, w, 0.5, 1e-6, "top packing weight")
	}
}

func TestRoundSharesProductBound(t *testing.T) {
	for _, tc := range []struct {
		frac []float64
		p    int
	}{
		{[]float64{4, 4, 4}, 64},
		{[]float64{7.9, 8.1, 1.0}, 64},
		{[]float64{1.2, 1.2, 1.2, 1.2}, 2},
		{[]float64{63.9}, 64},
		{[]float64{0.5, 0.5}, 4},
	} {
		ints := roundShares(tc.frac, tc.p)
		prod := 1
		for _, s := range ints {
			if s < 1 {
				t.Fatalf("share < 1: %v", ints)
			}
			prod *= s
		}
		if prod > tc.p {
			t.Fatalf("rounded shares %v product %d > p=%d", ints, prod, tc.p)
		}
	}
}

func TestPackingLoadZeroPacking(t *testing.T) {
	q := hypergraph.Triangle()
	if got := PackingLoad(q, map[string]int64{"R": 10, "S": 10, "T": 10}, []float64{0, 0, 0}, 4); got != 0 {
		t.Fatalf("zero packing load = %g", got)
	}
}

// The packing LP's dual must itself be a valid fractional vertex cover
// of the same total weight τ* — a self-certifying optimality witness.
func TestDualCoverCertifiesPacking(t *testing.T) {
	for _, q := range []hypergraph.Query{
		hypergraph.Triangle(), hypergraph.TwoWayJoin(), hypergraph.RST(),
		hypergraph.Path(6), hypergraph.Star(5), hypergraph.Cycle(5),
		hypergraph.Difficult(),
	} {
		ep, err := MaxEdgePacking(q)
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		vars := q.Vars()
		if len(ep.DualCover) != len(vars) {
			t.Fatalf("%s: %d duals for %d vars", q.Name, len(ep.DualCover), len(vars))
		}
		total := 0.0
		for i, w := range ep.DualCover {
			if w < -1e-7 {
				t.Fatalf("%s: negative cover weight %g on %s", q.Name, w, vars[i])
			}
			total += w
		}
		approx(t, total, ep.Tau, 1e-6, q.Name+" dual cover total")
		// Cover feasibility: every atom covered with weight ≥ 1.
		for _, a := range q.Atoms {
			sum := 0.0
			for i, v := range vars {
				if a.HasVar(v) {
					sum += ep.DualCover[i]
				}
			}
			if sum < 1-1e-6 {
				t.Fatalf("%s: atom %s covered only %g", q.Name, a.Name, sum)
			}
		}
	}
}
