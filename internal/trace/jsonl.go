package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// The JSONL codec is the machine-readable export: one JSON object per
// event, fields in Event declaration order, zero-valued fields omitted.
// Encoding is deterministic — equal event slices produce byte-identical
// output — and exact: ReadJSONL(WriteJSONL(events)) reproduces the
// events field-for-field (floats are emitted in Go's shortest
// round-tripping form). FuzzTraceRoundTrip holds the codec to that
// contract.

// WriteJSONL writes events as JSON lines.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	for i := range events {
		b, err := json.Marshal(&events[i])
		if err != nil {
			return fmt.Errorf("trace: encode event %d: %w", i, err)
		}
		bw.Write(b)
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// MarshalJSONL returns the JSONL encoding of events.
func MarshalJSONL(events []Event) []byte {
	var buf bytes.Buffer
	// Buffer writes cannot fail; an encode error here means an event
	// holds a non-finite float, which the recorder never produces.
	if err := WriteJSONL(&buf, events); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// ReadJSONL parses a JSONL trace back into events. Parsing is strict:
// every line must be a JSON object with only known Event fields, so
// format drift between writer and reader fails loudly instead of
// silently dropping data. Blank lines (including the trailing newline)
// are permitted.
func ReadJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var events []Event
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		var ev Event
		if err := dec.Decode(&ev); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		// Reject trailing garbage after the object on the same line.
		if dec.More() {
			return nil, fmt.Errorf("trace: line %d: trailing data after event", line)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	return events, nil
}
