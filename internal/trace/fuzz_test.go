package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzTraceRoundTrip holds the JSONL codec to its exactness contract:
// for any event the recorder could conceivably hold, parsing the
// encoding yields the identical event. Strings are sanitized to valid
// UTF-8 and floats to finite values — json.Marshal substitutes both
// (replacement runes, encode errors), and the recorder never produces
// them, so the contract is scoped to representable events.
func FuzzTraceRoundTrip(f *testing.F) {
	f.Add("send", 0, 3, "out:R", int64(7), int64(14), 2, 0, int64(0), int64(7), int64(7), 0.25, int64(0), int64(0), int64(0), 0)
	f.Add("round_end", 12, -1, "hypercube:shuffle", int64(4096), int64(8192), 0, 0, int64(0), int64(512), int64(0), 0.0, int64(0), int64(0), int64(0), 0)
	f.Add("chaos", 3, -1, "", int64(0), int64(0), 0, 4, int64(9), int64(0), int64(0), 0.0, int64(5), int64(2), int64(1), 3)
	f.Add("annotate", 0, -1, "phase: ünïcode & <html> \"quotes\"", int64(0), int64(0), 0, 0, int64(0), int64(0), int64(0), 0.0, int64(0), int64(0), int64(0), 0)
	f.Add("", -1, math.MinInt, "\x00\n\t", int64(math.MinInt64), int64(math.MaxInt64), math.MaxInt, -1, int64(-1), int64(-1), int64(-1), math.Inf(1), int64(-1), int64(-1), int64(-1), -1)
	f.Fuzz(func(t *testing.T, kind string, round, server int, name string,
		tuples, words int64, frags, attempt int, units, maxRecv, p99 int64, gini float64,
		dropped, duplicated, redelivered int64, crashes int) {
		if math.IsNaN(gini) || math.IsInf(gini, 0) {
			gini = 0
		}
		ev := Event{
			Kind: strings.ToValidUTF8(kind, "�"), Round: round, Server: server,
			Name: strings.ToValidUTF8(name, "�"), Tuples: tuples, Words: words,
			Frags: frags, Attempt: attempt, Units: units, MaxRecv: maxRecv, P99Recv: p99,
			Gini: gini, Dropped: dropped, Duplicated: duplicated, Redelivered: redelivered,
			Crashes: crashes,
		}
		events := []Event{ev, ev} // two copies: line framing must hold across events
		got, err := ReadJSONL(bytes.NewReader(MarshalJSONL(events)))
		if err != nil {
			t.Fatalf("ReadJSONL(MarshalJSONL(%+v)): %v", ev, err)
		}
		if len(got) != len(events) {
			t.Fatalf("round-trip returned %d events, wrote %d", len(got), len(events))
		}
		for i := range events {
			if got[i] != events[i] {
				t.Fatalf("event %d: round-trip mismatch\n got %+v\nwant %+v", i, got[i], events[i])
			}
		}
	})
}

// FuzzReadJSONL feeds the strict parser arbitrary bytes: it must never
// panic, and anything it accepts must re-encode and re-parse to the
// same events (the parser's output is always in the codec's image).
func FuzzReadJSONL(f *testing.F) {
	f.Add([]byte(`{"kind":"send","round":0,"server":1,"tuples":7}`))
	f.Add([]byte("{\"kind\":\"round_start\",\"round\":0,\"server\":-1}\n\n{\"kind\":\"skew\",\"round\":0,\"server\":-1,\"gini\":0.5}"))
	f.Add([]byte(`{"kind":"send","round":0,"server":1,"bogus":3}`))
	f.Add([]byte("not json at all"))
	f.Add([]byte{0xff, 0xfe, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		events, err := ReadJSONL(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := range events {
			// A parsed event came from JSON, so its strings are valid
			// UTF-8 and its floats finite — re-encoding cannot fail.
			if !utf8.ValidString(events[i].Kind) || !utf8.ValidString(events[i].Name) {
				t.Fatalf("parser produced invalid UTF-8 in event %d: %+v", i, events[i])
			}
		}
		again, err := ReadJSONL(bytes.NewReader(MarshalJSONL(events)))
		if err != nil {
			t.Fatalf("re-parse of re-encoded trace failed: %v", err)
		}
		if len(again) != len(events) {
			t.Fatalf("re-parse returned %d events, had %d", len(again), len(events))
		}
		for i := range events {
			if again[i] != events[i] {
				t.Fatalf("event %d changed across re-encode: %+v vs %+v", i, events[i], again[i])
			}
		}
	})
}
