package trace_test

// Golden-trace tests: the exporters' output for a fixed seed is part of
// the observability contract. Two fixed scenarios — a fault-free
// HyperCube triangle join and a fault-injected hash join — are run and
// both exports compared byte-for-byte against testdata/. Regenerate
// after an intentional format change with
//
//	go test ./internal/trace -run TestGolden -update

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"mpcquery/internal/chaos"
	"mpcquery/internal/hypercube"
	"mpcquery/internal/hypergraph"
	"mpcquery/internal/join2"
	"mpcquery/internal/mpc"
	"mpcquery/internal/relation"
	"mpcquery/internal/trace"
	"mpcquery/internal/workload"
)

var update = flag.Bool("update", false, "rewrite the golden trace files")

// hypercubeTriangleTrace runs the fixed fault-free scenario: a
// one-round HyperCube triangle join on 8 servers, seed 42.
func hypercubeTriangleTrace(t *testing.T) *trace.Recorder {
	t.Helper()
	q := hypergraph.Triangle()
	rels := map[string]*relation.Relation{}
	for i, a := range q.Atoms {
		rels[a.Name] = workload.Uniform(a.Name, a.Vars, 200, 60, 42+int64(i))
	}
	c := mpc.NewCluster(8, 42)
	rec := trace.NewRecorder()
	c.SetTracer(rec)
	if _, err := hypercube.Run(c, q, rels, "out", 42, hypercube.LocalGeneric); err != nil {
		t.Fatalf("hypercube.Run: %v", err)
	}
	return rec
}

// chaosHashJoinTrace runs the fixed fault-injected scenario: a parallel
// hash join on 5 servers under a mixed drop/duplicate/crash schedule,
// exercising the crash, backoff and chaos-summary event paths.
func chaosHashJoinTrace(t *testing.T) *trace.Recorder {
	t.Helper()
	r := workload.Uniform("R", []string{"x", "y"}, 150, 40, 7)
	s := workload.Uniform("S", []string{"y", "z"}, 150, 40, 8)
	c := mpc.NewCluster(5, 7)
	c.SetFaultInjector(chaos.MustParseSchedule("303:drop=0.1,dup=0.05,crash=0.1"))
	rec := trace.NewRecorder()
	c.SetTracer(rec)
	join2.HashJoin(c, r, s, "out", 7)
	if f := c.Failed(); f != nil {
		t.Fatalf("chaos scenario must recover, got %v", f)
	}
	return rec
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatalf("update %s: %v", path, err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s (regenerate with -update): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: output differs from golden (%d vs %d bytes); regenerate with -update if the change is intentional",
			name, len(got), len(want))
	}
}

func TestGoldenHypercubeTriangle(t *testing.T) {
	rec := hypercubeTriangleTrace(t)
	checkGolden(t, "hypercube_triangle.jsonl", trace.MarshalJSONL(rec.Events()))
	var chrome bytes.Buffer
	if err := trace.WriteChrome(&chrome, rec.Events()); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	checkGolden(t, "hypercube_triangle.chrome.json", chrome.Bytes())
}

func TestGoldenChaosHashJoin(t *testing.T) {
	rec := chaosHashJoinTrace(t)
	checkGolden(t, "chaos_hashjoin.jsonl", trace.MarshalJSONL(rec.Events()))
	var chrome bytes.Buffer
	if err := trace.WriteChrome(&chrome, rec.Events()); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	checkGolden(t, "chaos_hashjoin.chrome.json", chrome.Bytes())
}

// TestGoldenRunsAreReproducible re-runs each scenario and asserts the
// two recordings are event-for-event identical — the determinism
// property the golden files rely on, checked independently of testdata.
func TestGoldenRunsAreReproducible(t *testing.T) {
	for _, tc := range []struct {
		name string
		run  func(*testing.T) *trace.Recorder
	}{
		{"hypercube_triangle", hypercubeTriangleTrace},
		{"chaos_hashjoin", chaosHashJoinTrace},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a, b := tc.run(t), tc.run(t)
			if !bytes.Equal(trace.MarshalJSONL(a.Events()), trace.MarshalJSONL(b.Events())) {
				t.Error("two identically seeded runs produced different traces")
			}
		})
	}
}
