package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// The Chrome exporter renders a trace in the trace_event JSON format
// understood by Perfetto (ui.perfetto.dev) and chrome://tracing:
//
//   - pid 0 is the driver: one "X" frame per round spanning the round's
//     logical duration, plus max_recv and gini counters and instant
//     markers for annotations, backoff and chaos summaries;
//   - pid 1 holds one lane (tid) per server; each recv event becomes a
//     bar whose length IS its tuple count, so a round's frame width is
//     the round's max load L and skew is visible as ragged lanes.
//
// Time is logical: one microsecond per tuple, rounds laid end to end
// with a small gap. Equal event slices produce byte-identical output.

// chromeEvent is one trace_event record. Fields marshal in declaration
// order; Args values are maps, which encoding/json emits with sorted
// keys — both deterministic.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

const (
	pidDriver  = 0
	pidServers = 1
)

// WriteChrome writes events in Chrome trace_event format.
func WriteChrome(w io.Writer, events []Event) error {
	// Pass 1: round labels, per-round max load (frame width), and the
	// set of server lanes that will appear.
	maxRound, maxServer := -1, -1
	for i := range events {
		if events[i].Round > maxRound {
			maxRound = events[i].Round
		}
		if events[i].Server > maxServer {
			maxServer = events[i].Server
		}
	}
	names := make([]string, maxRound+1)
	started := make([]bool, maxRound+1)
	ended := make([]bool, maxRound+1)
	maxs := make([]int64, maxRound+1)
	perServer := map[[2]int]int64{} // (round, server) -> recv tuples so far
	for i := range events {
		ev := &events[i]
		switch ev.Kind {
		case KindRoundStart:
			names[ev.Round] = ev.Name
			started[ev.Round] = true
		case KindSkew:
			if ev.MaxRecv > maxs[ev.Round] {
				maxs[ev.Round] = ev.MaxRecv
			}
		case KindRecv:
			k := [2]int{ev.Round, ev.Server}
			perServer[k] += ev.Tuples
			if perServer[k] > maxs[ev.Round] {
				maxs[ev.Round] = perServer[k]
			}
		}
	}
	// Round r occupies [start[r], start[r]+span[r]); spans are the max
	// load so lane bars (1 µs per tuple) exactly fill the heaviest lane.
	starts := make([]int64, maxRound+2)
	for r := 0; r <= maxRound; r++ {
		span := maxs[r]
		if span < 1 {
			span = 1
		}
		starts[r+1] = starts[r] + span + span/10 + 1
	}
	tsOf := func(round int) int64 {
		if round < 0 {
			return 0
		}
		if round > maxRound {
			return starts[maxRound+1]
		}
		return starts[round]
	}
	spanOf := func(round int) int64 {
		if s := maxs[round]; s > 1 {
			return s
		}
		return 1
	}

	bw := bufio.NewWriter(w)
	bw.WriteString("{\"traceEvents\":[\n")
	first := true
	emit := func(ev chromeEvent) error {
		b, err := json.Marshal(&ev)
		if err != nil {
			return fmt.Errorf("trace: encode chrome event: %w", err)
		}
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		bw.Write(b)
		return nil
	}

	// Metadata: name the processes and one lane per server.
	meta := []chromeEvent{
		{Name: "process_name", Ph: "M", Pid: pidDriver, Args: map[string]any{"name": "mpc driver"}},
		{Name: "process_name", Ph: "M", Pid: pidServers, Args: map[string]any{"name": "servers"}},
	}
	for s := 0; s <= maxServer; s++ {
		meta = append(meta, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: pidServers, Tid: s,
			Args: map[string]any{"name": fmt.Sprintf("server %d", s)},
		})
	}
	for _, ev := range meta {
		if err := emit(ev); err != nil {
			return err
		}
	}

	// Pass 2: walk events in append order; lane bars advance a
	// per-(round, server) cursor.
	cursor := map[[2]int]int64{}
	for i := range events {
		ev := &events[i]
		var out chromeEvent
		switch ev.Kind {
		case KindRoundStart:
			continue // the frame is emitted at round_end, when totals are known
		case KindRoundEnd:
			ended[ev.Round] = true
			out = chromeEvent{
				Name: fmt.Sprintf("r%d %s", ev.Round, ev.Name), Ph: "X",
				Ts: tsOf(ev.Round), Dur: spanOf(ev.Round), Pid: pidDriver,
				Args: map[string]any{"tuples": ev.Tuples, "words": ev.Words, "max_recv": ev.MaxRecv},
			}
		case KindRecv:
			k := [2]int{ev.Round, ev.Server}
			out = chromeEvent{
				Name: ev.Name, Ph: "X",
				Ts: tsOf(ev.Round) + cursor[k], Dur: ev.Tuples,
				Pid: pidServers, Tid: ev.Server,
				Args: map[string]any{"tuples": ev.Tuples, "words": ev.Words, "frags": ev.Frags},
			}
			cursor[k] += ev.Tuples
		case KindSend:
			continue // lanes show received load; sends live in the JSONL export
		case KindSkew:
			if err := emit(chromeEvent{
				Name: "max_recv", Ph: "C", Ts: tsOf(ev.Round), Pid: pidDriver,
				Args: map[string]any{"tuples": ev.MaxRecv},
			}); err != nil {
				return err
			}
			out = chromeEvent{
				Name: "gini", Ph: "C", Ts: tsOf(ev.Round), Pid: pidDriver,
				Args: map[string]any{"gini": ev.Gini},
			}
		case KindAnnotate:
			out = chromeEvent{
				Name: ev.Name, Ph: "i", Ts: tsOf(ev.Round), Pid: pidDriver, S: "g",
			}
		case KindCrash:
			out = chromeEvent{
				Name: fmt.Sprintf("crash (attempt %d)", ev.Attempt), Ph: "i",
				Ts: tsOf(ev.Round) + int64(ev.Attempt), Pid: pidServers, Tid: ev.Server, S: "t",
			}
		case KindBackoff:
			out = chromeEvent{
				Name: fmt.Sprintf("backoff %d (attempt %d)", ev.Units, ev.Attempt), Ph: "i",
				Ts: tsOf(ev.Round) + int64(ev.Attempt), Pid: pidDriver, S: "p",
			}
		case KindChaos:
			out = chromeEvent{
				Name: "chaos", Ph: "i", Ts: tsOf(ev.Round), Pid: pidDriver, S: "p",
				Args: map[string]any{
					"attempts": ev.Attempt, "dropped": ev.Dropped, "duplicated": ev.Duplicated,
					"redelivered": ev.Redelivered, "crashes": ev.Crashes, "backoff": ev.Units,
				},
			}
		default:
			// Unknown kinds (future recorders) degrade to driver markers.
			out = chromeEvent{Name: ev.Kind, Ph: "i", Ts: tsOf(ev.Round), Pid: pidDriver, S: "p"}
		}
		if err := emit(out); err != nil {
			return err
		}
	}
	// Rounds that opened but never committed (a recovery failure aborted
	// them) still get a frame so the crash markers have context.
	for r := 0; r <= maxRound; r++ {
		if !started[r] || ended[r] {
			continue
		}
		if err := emit(chromeEvent{
			Name: fmt.Sprintf("r%d %s (uncommitted)", r, names[r]), Ph: "X",
			Ts: tsOf(r), Dur: spanOf(r), Pid: pidDriver,
		}); err != nil {
			return err
		}
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}
