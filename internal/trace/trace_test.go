package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRecorderAppendOrder(t *testing.T) {
	r := NewRecorder()
	r.RoundStart(0, "shuffle")
	r.Send(0, "out:R", 1, 10, 20)
	r.Recv(0, "out:R", 2, 10, 20, 1)
	r.RoundEnd(0, "shuffle", []int64{0, 0, 10}, []int64{0, 0, 20})
	evs := r.Events()
	wantKinds := []string{KindRoundStart, KindSend, KindRecv, KindSkew, KindRoundEnd}
	if len(evs) != len(wantKinds) {
		t.Fatalf("got %d events, want %d", len(evs), len(wantKinds))
	}
	for i, k := range wantKinds {
		if evs[i].Kind != k {
			t.Errorf("event %d kind %q, want %q", i, evs[i].Kind, k)
		}
	}
	if r.Len() != 5 {
		t.Errorf("Len = %d, want 5", r.Len())
	}
	r.Reset()
	if r.Len() != 0 {
		t.Errorf("Len after Reset = %d, want 0", r.Len())
	}
}

func TestRoundEndSkewSummary(t *testing.T) {
	r := NewRecorder()
	// Three servers: loads 30, 10, 0 — max 30, total 40, two active.
	r.RoundEnd(3, "x", []int64{30, 10, 0}, []int64{60, 20, 0})
	evs := r.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want skew + round_end", len(evs))
	}
	skew, end := evs[0], evs[1]
	if skew.Kind != KindSkew || end.Kind != KindRoundEnd {
		t.Fatalf("kinds %q, %q", skew.Kind, end.Kind)
	}
	if skew.Tuples != 40 || skew.Words != 80 || skew.MaxRecv != 30 || skew.Frags != 2 {
		t.Errorf("skew event %+v: want total 40, words 80, max 30, 2 active servers", skew)
	}
	if skew.P99Recv != 30 {
		t.Errorf("P99Recv = %d, want 30 (nearest-rank p99 on 3 servers is the max)", skew.P99Recv)
	}
	if skew.Gini <= 0 || skew.Gini >= 1 {
		t.Errorf("Gini = %v, want in (0, 1) for an unbalanced round", skew.Gini)
	}
	if end.Round != 3 || end.Name != "x" || end.Tuples != 40 || end.MaxRecv != 30 {
		t.Errorf("round_end event %+v", end)
	}
}

func TestRoundEndAllZero(t *testing.T) {
	r := NewRecorder()
	r.RoundEnd(0, "idle", []int64{0, 0}, []int64{0, 0})
	skew := r.Events()[0]
	if skew.MaxRecv != 0 || skew.P99Recv != 0 || skew.Gini != 0 || skew.Frags != 0 {
		t.Errorf("all-zero round skew %+v, want all zeros", skew)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	events := []Event{
		{Kind: KindRoundStart, Round: 0, Server: Driver, Name: "shuffle"},
		{Kind: KindSend, Round: 0, Server: 3, Name: "out:R", Tuples: 7, Words: 14},
		{Kind: KindRecv, Round: 0, Server: 1, Name: "out:R", Tuples: 7, Words: 14, Frags: 2},
		{Kind: KindSkew, Round: 0, Server: Driver, Tuples: 7, Words: 14, Frags: 1, MaxRecv: 7, P99Recv: 7, Gini: 0.5},
		{Kind: KindAnnotate, Round: 1, Server: Driver, Name: "phase: ünïcode & \"quotes\""},
		{Kind: KindCrash, Round: 1, Server: 2, Attempt: 1},
		{Kind: KindBackoff, Round: 1, Server: Driver, Attempt: 2, Units: 4},
		{Kind: KindChaos, Round: 1, Server: Driver, Attempt: 3, Dropped: 5, Duplicated: 2, Redelivered: 1, Crashes: 1, Units: 6},
	}
	got, err := ReadJSONL(bytes.NewReader(MarshalJSONL(events)))
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if len(got) != len(events) {
		t.Fatalf("got %d events back, wrote %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Errorf("event %d: got %+v, want %+v", i, got[i], events[i])
		}
	}
}

func TestJSONLDeterministic(t *testing.T) {
	events := []Event{
		{Kind: KindRoundStart, Round: 0, Server: Driver, Name: "a"},
		{Kind: KindSkew, Round: 0, Server: Driver, Gini: 0.123456789},
	}
	if !bytes.Equal(MarshalJSONL(events), MarshalJSONL(events)) {
		t.Error("equal event slices produced different JSONL bytes")
	}
}

func TestReadJSONLStrict(t *testing.T) {
	cases := map[string]string{
		"unknown field": `{"kind":"send","round":0,"server":1,"bogus":3}`,
		"trailing data": `{"kind":"send","round":0,"server":1} {"x":1}`,
		"not an object": `[1,2,3]`,
		"bad type":      `{"kind":"send","round":"zero","server":1}`,
	}
	for name, line := range cases {
		if _, err := ReadJSONL(strings.NewReader(line + "\n")); err == nil {
			t.Errorf("%s: ReadJSONL accepted %q", name, line)
		}
	}
	// Blank lines (and the trailing newline) are fine.
	evs, err := ReadJSONL(strings.NewReader("\n{\"kind\":\"round_start\",\"round\":0,\"server\":-1}\n\n"))
	if err != nil || len(evs) != 1 {
		t.Errorf("blank lines: got %d events, err %v", len(evs), err)
	}
}

func TestWriteChromeDeterministicAndWellFormed(t *testing.T) {
	events := []Event{
		{Kind: KindRoundStart, Round: 0, Server: Driver, Name: "shuffle"},
		{Kind: KindSend, Round: 0, Server: 0, Name: "out:R", Tuples: 5, Words: 10},
		{Kind: KindRecv, Round: 0, Server: 1, Name: "out:R", Tuples: 5, Words: 10, Frags: 1},
		{Kind: KindSkew, Round: 0, Server: Driver, Tuples: 5, Words: 10, Frags: 1, MaxRecv: 5, P99Recv: 5, Gini: 0.5},
		{Kind: KindRoundEnd, Round: 0, Server: Driver, Name: "shuffle", Tuples: 5, Words: 10, MaxRecv: 5},
		{Kind: KindAnnotate, Round: 1, Server: Driver, Name: "phase two"},
		{Kind: KindRoundStart, Round: 1, Server: Driver, Name: "lost"},
		{Kind: KindCrash, Round: 1, Server: 1, Attempt: 0},
		// Round 1 never ends: a recovery failure aborted it.
	}
	var a, b bytes.Buffer
	if err := WriteChrome(&a, events); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	if err := WriteChrome(&b, events); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("equal event slices produced different Chrome output")
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(a.Bytes(), &doc); err != nil {
		t.Fatalf("Chrome output is not valid JSON: %v", err)
	}
	var names []string
	for _, ev := range doc.TraceEvents {
		if n, ok := ev["name"].(string); ok {
			names = append(names, n)
		}
		// Metadata events carry the process/thread label in args.name.
		if args, ok := ev["args"].(map[string]any); ok {
			if n, ok := args["name"].(string); ok {
				names = append(names, n)
			}
		}
	}
	joined := strings.Join(names, "\n")
	for _, want := range []string{"mpc driver", "server 1", "r0 shuffle", "out:R", "max_recv", "gini", "phase two", "crash (attempt 0)", "r1 lost (uncommitted)"} {
		if !strings.Contains(joined, want) {
			t.Errorf("Chrome output missing %q; names:\n%s", want, joined)
		}
	}
}

type fakeAnnotator struct {
	enabled bool
	msgs    []string
}

func (f *fakeAnnotator) TraceEnabled() bool       { return f.enabled }
func (f *fakeAnnotator) TraceAnnotate(msg string) { f.msgs = append(f.msgs, msg) }

func TestAnnotateHelpers(t *testing.T) {
	Annotate(nil, "dropped") // must not panic
	Annotatef(nil, "d%d", 1) // must not panic
	off := &fakeAnnotator{}
	Annotate(off, "dropped")
	Annotatef(off, "d%d", 2)
	if len(off.msgs) != 0 {
		t.Errorf("disabled annotator recorded %v", off.msgs)
	}
	on := &fakeAnnotator{enabled: true}
	Annotate(on, "one")
	Annotatef(on, "two %d", 2)
	if len(on.msgs) != 2 || on.msgs[0] != "one" || on.msgs[1] != "two 2" {
		t.Errorf("enabled annotator recorded %v", on.msgs)
	}
}
