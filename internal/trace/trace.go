// Package trace is the simulator's observability layer: a structured
// event recorder that turns the MPC cost model into an inspectable
// artifact. Every claim the tutorial makes is a statement about
// (L, r, C) — load per server per round, rounds, total communication —
// and the metric window (mpc.Metrics) exposes only the post-hoc
// aggregates. The trace records *why* a round cost what it did:
//
//   - round_start / round_end frame every communication round;
//   - send / recv events carry per-stream, per-server tuple and word
//     counts, with recv fan-in (how many source fragments landed);
//   - skew events summarize each round's received-load distribution
//     (max, nearest-rank p99, Gini) using internal/stats, so hash-route
//     imbalance is visible without re-deriving it;
//   - annotate events are phase markers emitted by algorithms through
//     the Annotate hook ("skewjoin: heavy broadcast", ...);
//   - crash / backoff / chaos events are the recovery driver's ledger
//     under fault injection.
//
// Recording is deterministic — events carry logical time (round index
// and append order), never wall-clock — so equal seeds produce
// byte-identical exports. Two exporters ship with the package:
// deterministic JSON lines (WriteJSONL/ReadJSONL, machine-diffable and
// fuzz-checked to round-trip) and the Chrome trace_event format
// (WriteChrome, loadable in Perfetto or chrome://tracing with rounds as
// frames and servers as lanes, bar length proportional to tuples
// received).
//
// A Recorder is attached to a cluster with (*mpc.Cluster).SetTracer.
// With no recorder attached the hot path pays a nil check and nothing
// else.
package trace

import (
	"fmt"
	"sync"

	"mpcquery/internal/relation"
	"mpcquery/internal/stats"
)

// Event kinds. Kind is a string so JSONL traces are self-describing.
const (
	KindRoundStart = "round_start" // Round, Name
	KindSend       = "send"        // Round, Name=stream, Server=source, Tuples, Words
	KindRecv       = "recv"        // Round, Name=stream, Server=destination, Tuples, Words, Frags=fan-in
	KindSkew       = "skew"        // Round, Tuples/Words=totals, Frags=active servers, MaxRecv, P99Recv, Gini
	KindRoundEnd   = "round_end"   // Round, Name, Tuples/Words=totals, MaxRecv
	KindAnnotate   = "annotate"    // Round=next round index at call time, Name=phase marker
	KindCrash      = "crash"       // Round, Attempt, Server — server down during the attempt
	KindBackoff    = "backoff"     // Round, Attempt, Units — replay backoff (metered, never slept)
	KindChaos      = "chaos"       // Round, Attempt=attempts, Dropped/Duplicated/Redelivered/Crashes, Units=backoff
	KindAdapt      = "adapt"       // Round=probe round, Name=reason, MaxRecv/Gini=triggering signal
)

// Event is one trace record. Server is -1 for driver-scoped events
// (round frames, skew summaries, annotations, backoff). Fields are
// scalar and comparable so events round-trip exactly through the JSONL
// codec and can be compared with ==.
type Event struct {
	Kind        string  `json:"kind"`
	Round       int     `json:"round"`
	Server      int     `json:"server"`
	Name        string  `json:"name,omitempty"`
	Tuples      int64   `json:"tuples,omitempty"`
	Words       int64   `json:"words,omitempty"`
	Frags       int     `json:"frags,omitempty"`
	Attempt     int     `json:"attempt,omitempty"`
	Units       int64   `json:"units,omitempty"`
	MaxRecv     int64   `json:"max_recv,omitempty"`
	P99Recv     int64   `json:"p99_recv,omitempty"`
	Gini        float64 `json:"gini,omitempty"`
	Dropped     int64   `json:"dropped,omitempty"`
	Duplicated  int64   `json:"duplicated,omitempty"`
	Redelivered int64   `json:"redelivered,omitempty"`
	Crashes     int     `json:"crashes,omitempty"`
}

// Driver is the Server value of driver-scoped events.
const Driver = -1

// Recorder accumulates events in append order. It is safe for
// concurrent use (the race lane runs traced rounds), though the
// simulator records from the single-threaded driver so traces are
// deterministic.
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

func (r *Recorder) append(ev Event) {
	r.mu.Lock()
	r.events = append(r.events, ev)
	r.mu.Unlock()
}

// Events returns the recorded events. The returned slice is the
// recorder's backing store; treat it as read-only.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.events
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Reset discards all recorded events (capacity retained).
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.events = r.events[:0]
	r.mu.Unlock()
}

// RoundStart records the opening of round `round` (zero-based metric
// index) with its label.
func (r *Recorder) RoundStart(round int, name string) {
	r.append(Event{Kind: KindRoundStart, Round: round, Server: Driver, Name: name})
}

// Send records the per-stream totals one source server emitted this
// round.
func (r *Recorder) Send(round int, stream string, src int, tuples, words int64) {
	r.append(Event{Kind: KindSend, Round: round, Server: src, Name: stream, Tuples: tuples, Words: words})
}

// Recv records the per-stream totals one destination server received
// this round; frags is the fan-in (number of non-empty source
// fragments concatenated into the destination's inbox).
func (r *Recorder) Recv(round int, stream string, dst int, tuples, words int64, frags int) {
	r.append(Event{Kind: KindRecv, Round: round, Server: dst, Name: stream, Tuples: tuples, Words: words, Frags: frags})
}

// RoundEnd closes a round: it derives the round's skew histogram from
// the per-server received-tuple counts using internal/stats and appends
// a skew event followed by the round_end frame. recv and recvWords are
// the RoundStat vectors (one slot per server, zeros included).
func (r *Recorder) RoundEnd(round int, name string, recv, recvWords []int64) {
	var total, totalWords int64
	for _, v := range recv {
		total += v
	}
	for _, v := range recvWords {
		totalWords += v
	}
	// Histogram of per-server received load: server id plays the role of
	// the "value", its received-tuple count the degree.
	d := make(stats.Degrees, len(recv))
	for s, n := range recv {
		if n > 0 {
			d[relation.Value(s)] = int(n)
		}
	}
	sum := stats.Summarize(d)
	r.append(Event{
		Kind: KindSkew, Round: round, Server: Driver,
		Tuples: total, Words: totalWords, Frags: sum.Distinct,
		MaxRecv: int64(sum.MaxDegree),
		P99Recv: stats.QuantileInt64(recv, 0.99),
		Gini:    stats.Gini(recv),
	})
	r.append(Event{
		Kind: KindRoundEnd, Round: round, Server: Driver, Name: name,
		Tuples: total, Words: totalWords, MaxRecv: int64(sum.MaxDegree),
	})
}

// Annotate records an algorithm phase marker. round is the metric index
// the *next* round will get — the marker precedes the rounds it labels.
func (r *Recorder) Annotate(round int, msg string) {
	r.append(Event{Kind: KindAnnotate, Round: round, Server: Driver, Name: msg})
}

// Adapt records a mid-query re-plan decision: after observing round's
// receive vector, the adaptive executor switches the remaining rounds
// to a different path. Name carries the human-readable reason and
// MaxRecv/Gini the triggering skew signal, so a trace alone explains
// why a run adapted.
func (r *Recorder) Adapt(round int, reason string, maxRecv int64, gini float64) {
	r.append(Event{Kind: KindAdapt, Round: round, Server: Driver, Name: reason, MaxRecv: maxRecv, Gini: gini})
}

// Crash records that server was down during delivery attempt `attempt`
// of the round's recovery.
func (r *Recorder) Crash(round, attempt, server int) {
	r.append(Event{Kind: KindCrash, Round: round, Server: server, Attempt: attempt})
}

// Backoff records the simulated delay the recovery driver metered
// before replay attempt `attempt`.
func (r *Recorder) Backoff(round, attempt int, units int64) {
	r.append(Event{Kind: KindBackoff, Round: round, Server: Driver, Attempt: attempt, Units: units})
}

// ChaosSummary records the round's recovery ledger after it committed.
func (r *Recorder) ChaosSummary(round, attempts int, dropped, duplicated, redelivered int64, crashes int, backoffUnits int64) {
	r.append(Event{
		Kind: KindChaos, Round: round, Server: Driver, Attempt: attempts,
		Dropped: dropped, Duplicated: duplicated, Redelivered: redelivered,
		Crashes: crashes, Units: backoffUnits,
	})
}

// Annotator is anything that accepts phase markers — notably
// *mpc.Cluster, which forwards them to its attached Recorder (and drops
// them when tracing is disabled). The two-method split lets Annotatef
// skip formatting entirely on untraced runs.
type Annotator interface {
	// TraceEnabled reports whether markers are currently recorded.
	TraceEnabled() bool
	// TraceAnnotate records one phase marker.
	TraceAnnotate(msg string)
}

// Annotate emits a phase marker through a, tolerating nil annotators
// and disabled tracing. Algorithms call this between rounds to label
// their phases; on an untraced cluster the cost is two interface calls.
func Annotate(a Annotator, msg string) {
	if a != nil && a.TraceEnabled() {
		a.TraceAnnotate(msg)
	}
}

// Annotatef is Annotate with formatting; the format is only evaluated
// when tracing is enabled.
func Annotatef(a Annotator, format string, args ...any) {
	if a != nil && a.TraceEnabled() {
		a.TraceAnnotate(fmt.Sprintf(format, args...))
	}
}
